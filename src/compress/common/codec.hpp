#pragma once
// Public compressor interface. Both the SZ-class and ZFP-class codecs
// implement this; studies and benches only see this surface.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/field.hpp"
#include "support/status.hpp"
#include "support/units.hpp"

namespace lcp::compress {

/// Error-bound mode. The paper uses SZ absolute bounds and ZFP
/// fixed-accuracy (both cap pointwise absolute error); kFixedRate is ZFP's
/// other headline mode (a hard size budget, no error guarantee) and
/// kPointwiseRelative is SZ's PW_REL mode (the paper's ref [4]): each
/// element's error is capped relative to its own magnitude.
enum class BoundMode : std::uint8_t {
  kAbsolute = 0,           ///< |x - x'| <= value for every element
  kFixedRate = 1,          ///< value = compressed bits per element (ZFP only)
  kPointwiseRelative = 2,  ///< |x - x'| <= value * |x| per element (SZ only)
};

/// Error bound requested at compression time.
struct ErrorBound {
  BoundMode mode = BoundMode::kAbsolute;
  double value = 1e-3;

  [[nodiscard]] static ErrorBound absolute(double value) noexcept {
    return {BoundMode::kAbsolute, value};
  }
  [[nodiscard]] static ErrorBound fixed_rate(double bits_per_value) noexcept {
    return {BoundMode::kFixedRate, bits_per_value};
  }
  [[nodiscard]] static ErrorBound pointwise_relative(double value) noexcept {
    return {BoundMode::kPointwiseRelative, value};
  }
};

/// The paper's four study bounds: 1e-1, 1e-2, 1e-3, 1e-4.
[[nodiscard]] const std::vector<double>& paper_error_bounds();

/// Result of a compression call: the serialized container plus bookkeeping
/// used by the power studies (sizes and native wall time).
struct CompressResult {
  std::vector<std::uint8_t> container;  ///< self-describing compressed bytes
  Bytes input_bytes;
  Bytes output_bytes;
  Seconds native_wall_time;  ///< measured on the host during this call

  [[nodiscard]] double compression_ratio() const noexcept {
    return output_bytes.bytes() == 0
               ? 0.0
               : static_cast<double>(input_bytes.bytes()) /
                     static_cast<double>(output_bytes.bytes());
  }
};

/// Result of a decompression call.
struct DecompressResult {
  data::Field field;
  Seconds native_wall_time;
};

/// Abstract lossy compressor.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Codec identifier ("sz", "zfp").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Compresses `field` under `bound`. Fails on non-finite input.
  [[nodiscard]] virtual Expected<CompressResult> compress(
      const data::Field& field, const ErrorBound& bound) const = 0;

  /// Decompresses a container produced by this codec.
  [[nodiscard]] virtual Expected<DecompressResult> decompress(
      std::span<const std::uint8_t> container) const = 0;
};

/// Validates that all values are finite (both codecs require this).
[[nodiscard]] Status validate_finite(const data::Field& field);

}  // namespace lcp::compress
