#pragma once
// Chunk-parallel compression: splits a field along its slowest axis into
// independent sub-fields, compresses each on a thread pool, and frames the
// results in a multi-chunk container. This is the shared-memory scaling
// path the paper's single-core study leaves as future work — upstream SZ
// and ZFP parallelize the same way (independent blocks/chunks).
//
// Chunking resets cross-chunk prediction, so ratios can differ slightly
// from single-shot compression; the absolute error bound is unaffected
// (each chunk honours it independently).

#include <cstdint>
#include <span>
#include <vector>

#include "compress/common/codec.hpp"
#include "support/thread_pool.hpp"

namespace lcp::compress {

/// Timing breakdown of one parallel_compress call, for the scaling bench
/// and the streaming dump's overlap accounting. Chunk durations are
/// measured inside the worker, so on an oversubscribed host they include
/// contention; the serial share (chunk setup + frame assembly) is what
/// Amdahl charges against worker scaling.
struct ParallelStats {
  std::vector<Seconds> chunk_seconds;  ///< per-chunk compress wall time
  Seconds parallel_seconds{0.0};       ///< wall time of the pooled region
  Seconds serial_seconds{0.0};         ///< setup + frame assembly wall time
  Seconds total_seconds{0.0};
};

struct ParallelOptions {
  /// Target elements per chunk; the slowest-axis split is rounded to whole
  /// hyperplanes. Chunks never get smaller than one hyperplane.
  std::size_t target_chunk_elements = 1 << 20;
  /// When non-null, filled with the call's timing breakdown.
  ParallelStats* stats = nullptr;
};

/// Compresses `field` with `codec` across `pool`. The returned container
/// is a multi-chunk frame decodable only by parallel_decompress.
[[nodiscard]] Expected<CompressResult> parallel_compress(
    const Compressor& codec, const data::Field& field, const ErrorBound& bound,
    ThreadPool& pool, const ParallelOptions& options = {});

/// Decompresses a multi-chunk frame produced by parallel_compress.
[[nodiscard]] Expected<DecompressResult> parallel_decompress(
    const Compressor& codec, std::span<const std::uint8_t> frame,
    ThreadPool& pool);

/// Splits dims into per-chunk slowest-axis extents (exposed for tests):
/// returns the row counts of each chunk, summing to dims.extent(0).
[[nodiscard]] std::vector<std::size_t> chunk_rows(const data::Dims& dims,
                                                  std::size_t target_elements);

}  // namespace lcp::compress
