#include "compress/common/metrics.hpp"

namespace lcp::compress {

Expected<RoundTripReport> round_trip(const Compressor& codec,
                                     const data::Field& field,
                                     const ErrorBound& bound) {
  auto compressed = codec.compress(field, bound);
  if (!compressed) {
    return compressed.status();
  }
  auto decompressed = codec.decompress(compressed->container);
  if (!decompressed) {
    return decompressed.status();
  }
  auto error = data::compare_fields(field, decompressed->field);
  if (!error) {
    return error.status();
  }

  RoundTripReport report;
  report.codec = codec.name();
  report.error_bound = bound.value;
  report.compression_ratio = compressed->compression_ratio();
  report.bit_rate =
      field.element_count() == 0
          ? 0.0
          : 8.0 * static_cast<double>(compressed->output_bytes.bytes()) /
                static_cast<double>(field.element_count());
  report.error = *error;
  report.compress_time = compressed->native_wall_time;
  report.decompress_time = decompressed->native_wall_time;
  if (bound.mode == BoundMode::kAbsolute) {
    // A hair of slack for float32 rounding at the reconstruction step.
    report.bound_respected =
        error->max_abs_error <= bound.value * (1.0 + 1e-6) + 1e-30;
  } else if (bound.mode == BoundMode::kPointwiseRelative) {
    report.bound_respected =
        error->max_rel_error <= bound.value * (1.0 + 1e-6);
  } else {
    // Fixed rate promises size, not accuracy; the size promise is exact at
    // block granularity and verified by the codec tests.
    report.bound_respected = true;
  }
  return report;
}

}  // namespace lcp::compress
