#include "compress/common/registry.hpp"

#include "compress/common/container.hpp"
#include "compress/lossless/shuffle_codec.hpp"
#include "compress/sz/sz_compressor.hpp"
#include "compress/zfp/zfp_compressor.hpp"

namespace lcp::compress {

const char* codec_name(CodecId id) noexcept {
  switch (id) {
    case CodecId::kSz:
      return "sz";
    case CodecId::kZfp:
      return "zfp";
  }
  return "?";
}

const std::vector<CodecId>& all_codecs() {
  static const std::vector<CodecId> ids = {CodecId::kSz, CodecId::kZfp};
  return ids;
}

std::unique_ptr<Compressor> make_compressor(CodecId id) {
  switch (id) {
    case CodecId::kSz:
      return std::make_unique<sz::SzCompressor>();
    case CodecId::kZfp:
      return std::make_unique<zfp::ZfpCompressor>();
  }
  LCP_REQUIRE(false, "unknown codec id");
  return nullptr;
}

Expected<std::unique_ptr<Compressor>> make_compressor(const std::string& name) {
  for (CodecId id : all_codecs()) {
    if (name == codec_name(id)) {
      return make_compressor(id);
    }
  }
  if (name == "lossless") {
    return std::unique_ptr<Compressor>{
        std::make_unique<lossless::ShuffleCodec>()};
  }
  if (name == "sz2") {
    // SZ with the second-order Lorenzo predictor (HPDC'20). Containers it
    // produces still self-describe as "sz" — the predictor id travels in
    // the payload, so any SZ decoder handles them.
    sz::SzOptions options;
    options.predictor = sz::SzPredictor::kSecondOrder;
    return std::unique_ptr<Compressor>{
        std::make_unique<sz::SzCompressor>(options)};
  }
  return Status::invalid_argument("unknown codec: " + name);
}

const std::vector<std::string>& registered_codec_names() {
  static const std::vector<std::string> names = {"sz", "sz2", "zfp",
                                                 "lossless"};
  return names;
}

Expected<DecompressResult> decompress_any(
    std::span<const std::uint8_t> container) {
  auto view = parse_container(container);
  if (!view) {
    return view.status().with_context("decompress_any");
  }
  auto codec = make_compressor(view->codec);
  if (!codec) {
    return codec.status().with_context("decompress_any");
  }
  return (*codec)->decompress(container);
}

}  // namespace lcp::compress
