#include "compress/common/checkpoint.hpp"

#include <algorithm>
#include <cstdio>

#include "compress/common/container.hpp"
#include "compress/common/registry.hpp"
#include "support/bytestream.hpp"
#include "support/checksum.hpp"

namespace lcp::compress {
namespace {

constexpr std::uint32_t kManifestMagic = 0x4D50434CU;  // "LCPM"
constexpr std::uint8_t kManifestVersion = 1;

/// Everything a reader needs to place and decode slabs.
struct Manifest {
  std::string codec;
  ErrorBound bound;
  data::Dims dims;
  std::string field_name;
  std::uint64_t chunk_elements = 0;
  std::uint32_t slab_count = 0;
};

std::vector<std::uint8_t> build_manifest(const Manifest& m) {
  ByteWriter w;
  w.write_u32(kManifestMagic);
  w.write_u8(kManifestVersion);
  w.write_string(m.codec);
  w.write_u8(static_cast<std::uint8_t>(m.bound.mode));
  w.write_f64(m.bound.value);
  w.write_u8(static_cast<std::uint8_t>(m.dims.rank()));
  for (std::size_t e : m.dims.extents()) {
    w.write_u64(e);
  }
  w.write_string(m.field_name);
  w.write_u64(m.chunk_elements);
  w.write_u32(m.slab_count);
  return w.finish();
}

Expected<Manifest> parse_manifest(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto magic = r.read_u32();
  if (!magic || *magic != kManifestMagic) {
    return Status::corrupt_data("bad manifest magic");
  }
  auto version = r.read_u8();
  if (!version || *version != kManifestVersion) {
    return Status::unsupported("unknown manifest version");
  }
  Manifest m;
  auto codec = r.read_string();
  if (!codec) {
    return codec.status().with_context("manifest codec");
  }
  m.codec = std::move(*codec);
  auto mode = r.read_u8();
  if (!mode ||
      *mode > static_cast<std::uint8_t>(BoundMode::kPointwiseRelative)) {
    return Status::corrupt_data("manifest bound mode invalid");
  }
  auto value = r.read_f64();
  if (!value) {
    return value.status().with_context("manifest bound");
  }
  m.bound = ErrorBound{static_cast<BoundMode>(*mode), *value};
  auto rank = r.read_u8();
  if (!rank || *rank == 0 || *rank > 4) {
    return Status::corrupt_data("manifest rank out of range");
  }
  std::vector<std::size_t> extents;
  std::uint64_t elements = 1;
  for (std::uint8_t i = 0; i < *rank; ++i) {
    auto e = r.read_u64();
    if (!e || *e == 0) {
      return Status::corrupt_data("manifest extent invalid");
    }
    if (*e > kMaxContainerElements ||
        elements > kMaxContainerElements / *e) {
      return Status::corrupt_data("manifest dims exceed element limit");
    }
    elements *= *e;
    extents.push_back(static_cast<std::size_t>(*e));
  }
  m.dims = data::Dims{std::move(extents)};
  auto name = r.read_string();
  if (!name) {
    return name.status().with_context("manifest field name");
  }
  m.field_name = std::move(*name);
  auto chunk_elements = r.read_u64();
  if (!chunk_elements || *chunk_elements == 0) {
    return Status::corrupt_data("manifest chunk_elements invalid");
  }
  m.chunk_elements = *chunk_elements;
  auto slabs = r.read_u32();
  if (!slabs) {
    return slabs.status().with_context("manifest slab count");
  }
  m.slab_count = *slabs;
  const std::uint64_t expected_slabs =
      (elements + m.chunk_elements - 1) / m.chunk_elements;
  if (m.slab_count != expected_slabs) {
    return Status::corrupt_data("manifest slab count inconsistent with dims");
  }
  return m;
}

/// Adapter from recover_checkpoint's verdicts to the shared region fill.
void interpolate_lost(std::span<float> out,
                      const std::vector<SlabVerdict>& slabs) {
  std::vector<SlabRegion> regions;
  regions.reserve(slabs.size());
  for (const auto& v : slabs) {
    regions.push_back({v.element_offset, v.element_count, v.recovered});
  }
  interpolate_lost_regions(out, regions);
}

/// Shared slab walk for both decode paths: decodes each slab chunk into
/// `report`, filling per-slab verdicts.
void decode_slabs(const FrameRecovery& rec, const Manifest& manifest,
                  std::span<float> out, RecoveryReport& report) {
  const std::size_t n = manifest.dims.element_count();
  report.slabs.resize(manifest.slab_count);
  for (std::uint32_t s = 0; s < manifest.slab_count; ++s) {
    SlabVerdict& v = report.slabs[s];
    v.chunk_seq = s + 1;
    v.element_offset = static_cast<std::size_t>(s) * manifest.chunk_elements;
    v.element_count =
        std::min<std::size_t>(manifest.chunk_elements, n - v.element_offset);
    const ChunkReport& chunk = rec.chunks[v.chunk_seq];
    v.frame_state = chunk.state;
    if (chunk.state != ChunkState::kIntact) {
      v.status = chunk.status;
      continue;
    }
    auto decoded = decompress_any(chunk.payload);
    if (!decoded) {
      v.status = decoded.status().with_context("slab " + std::to_string(s));
      continue;
    }
    if (decoded->field.element_count() != v.element_count) {
      v.status = Status::corrupt_data("slab element count mismatch")
                     .with_context("slab " + std::to_string(s));
      continue;
    }
    const auto values = decoded->field.values();
    std::copy(values.begin(), values.end(),
              out.begin() + static_cast<std::ptrdiff_t>(v.element_offset));
    v.status = Status::ok();
    v.recovered = true;
  }
}

}  // namespace

void interpolate_lost_regions(std::span<float> out,
                              std::span<const SlabRegion> regions) {
  std::size_t i = 0;
  while (i < regions.size()) {
    if (regions[i].recovered) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < regions.size() && !regions[j].recovered) {
      ++j;
    }
    const std::size_t lo = regions[i].element_offset;
    const std::size_t hi =
        regions[j - 1].element_offset + regions[j - 1].element_count;
    const bool has_left = i > 0;
    const bool has_right = j < regions.size();
    if (!has_left && !has_right) {
      return;  // nothing survived: the caller's zero fill stands
    }
    // Boundary clamp: a run at either end of the field has one surviving
    // neighbor; both anchors collapse to it, so the ramp below degenerates
    // to a flat nearest-neighbor fill instead of extrapolating past the
    // field edge.
    const float left = has_left ? out[lo - 1] : out[hi];
    const float right = has_right ? out[hi] : left;
    const std::size_t len = hi - lo;
    for (std::size_t k = 0; k < len; ++k) {
      const double t =
          static_cast<double>(k + 1) / static_cast<double>(len + 1);
      out[lo + k] = static_cast<float>((1.0 - t) * static_cast<double>(left) +
                                       t * static_cast<double>(right));
    }
    i = j;
  }
}

std::size_t checkpoint_slab_count(const data::Field& field,
                                  const CheckpointOptions& options) noexcept {
  if (options.chunk_elements == 0) {
    return 0;
  }
  return (field.element_count() + options.chunk_elements - 1) /
         options.chunk_elements;
}

Expected<std::vector<std::uint8_t>> checkpoint_manifest(
    const data::Field& field, const CheckpointOptions& options) {
  if (field.element_count() == 0) {
    return Status::invalid_argument("checkpoint needs a non-empty field");
  }
  if (options.chunk_elements == 0) {
    return Status::invalid_argument("checkpoint chunk_elements must be > 0");
  }
  Manifest manifest;
  manifest.codec = options.codec;
  manifest.bound = options.bound;
  manifest.dims = field.dims();
  manifest.field_name = field.name();
  manifest.chunk_elements = options.chunk_elements;
  manifest.slab_count =
      static_cast<std::uint32_t>(checkpoint_slab_count(field, options));
  return build_manifest(manifest);
}

Expected<std::vector<std::uint8_t>> compress_checkpoint_slab(
    const data::Field& field, const CheckpointOptions& options,
    std::size_t slab_index, const Compressor& codec) {
  const std::size_t n = field.element_count();
  const std::size_t offset = slab_index * options.chunk_elements;
  if (options.chunk_elements == 0 || offset >= n) {
    return Status::invalid_argument("checkpoint slab index out of range");
  }
  const std::size_t count =
      std::min<std::size_t>(options.chunk_elements, n - offset);
  const auto values = field.values();
  data::Field slab{
      field.name(), data::Dims::d1(count),
      std::vector<float>(values.begin() + static_cast<std::ptrdiff_t>(offset),
                         values.begin() +
                             static_cast<std::ptrdiff_t>(offset + count))};
  auto compressed = codec.compress(slab, options.bound);
  if (!compressed) {
    return compressed.status().with_context("slab " +
                                            std::to_string(slab_index));
  }
  return std::move(compressed->container);
}

Expected<std::vector<std::uint8_t>> write_checkpoint(
    const data::Field& field, const CheckpointOptions& options) {
  auto manifest_bytes = checkpoint_manifest(field, options);
  if (!manifest_bytes) {
    return manifest_bytes.status().with_context("write_checkpoint");
  }
  auto codec = make_compressor(options.codec);
  if (!codec) {
    return codec.status().with_context("write_checkpoint");
  }

  FrameParams params;
  params.flags = kFrameFlagCheckpoint;
  FramedWriter writer{params};
  writer.append_chunk(*manifest_bytes);

  const std::size_t slab_count = checkpoint_slab_count(field, options);
  for (std::size_t s = 0; s < slab_count; ++s) {
    auto compressed = compress_checkpoint_slab(field, options, s, **codec);
    if (!compressed) {
      return compressed.status();
    }
    writer.append_chunk(*compressed);
  }
  writer.append_chunk(*manifest_bytes);  // replica guards against head loss
  return writer.finish();
}

std::size_t RecoveryReport::recovered_slabs() const noexcept {
  std::size_t count = 0;
  for (const auto& s : slabs) {
    count += s.recovered ? 1 : 0;
  }
  return count;
}

double RecoveryReport::recovered_fraction() const noexcept {
  if (total_elements == 0) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(lost_elements) /
                   static_cast<double>(total_elements);
}

std::string RecoveryReport::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "recovered %zu/%zu slabs (%.1f%% of elements)",
                recovered_slabs(), slabs.size(),
                100.0 * recovered_fraction());
  return buf;
}

Expected<RecoveryReport> recover_checkpoint(
    std::span<const std::uint8_t> bytes, const RecoveryPolicy& policy) {
  auto rec = recover_framed(bytes);
  if (!rec) {
    return rec.status().with_context("recover_checkpoint");
  }
  if ((rec->info.flags & kFrameFlagCheckpoint) == 0) {
    return Status::invalid_argument(
        "frame is not a checkpoint (flag missing)");
  }
  if (rec->info.chunk_count < 2) {
    return Status::corrupt_data("checkpoint has no manifest chunks");
  }

  RecoveryReport report;
  report.header_from_replica = rec->header_from_replica;

  // Manifest: chunk 0, or its replica in the last chunk.
  Expected<Manifest> manifest =
      Status::corrupt_data("manifest chunk lost");
  if (rec->chunks.front().state == ChunkState::kIntact) {
    manifest = parse_manifest(rec->chunks.front().payload);
  }
  if (!manifest && rec->chunks.back().state == ChunkState::kIntact) {
    manifest = parse_manifest(rec->chunks.back().payload);
    if (manifest) {
      report.manifest_from_replica = true;
    }
  }
  if (!manifest) {
    return manifest.status().with_context(
        "both manifest copies unreadable");
  }
  if (manifest->slab_count + 2 != rec->info.chunk_count) {
    return Status::corrupt_data(
        "manifest slab count inconsistent with frame chunk count");
  }

  const std::size_t n = manifest->dims.element_count();
  report.total_elements = n;
  std::vector<float> out(n, 0.0F);
  decode_slabs(*rec, *manifest, out, report);

  for (const auto& v : report.slabs) {
    if (!v.recovered) {
      report.lost_elements += v.element_count;
    }
  }
  if (policy.fail_on_any_loss && report.lost_elements > 0) {
    for (const auto& v : report.slabs) {
      if (!v.recovered) {
        return v.status.with_context("recover_checkpoint (strict policy)");
      }
    }
  }
  if (policy.fill == RecoveryFill::kInterpolate) {
    interpolate_lost(out, report.slabs);
  }
  report.field =
      data::Field{manifest->field_name, manifest->dims, std::move(out)};
  return report;
}

Expected<data::Field> read_checkpoint(std::span<const std::uint8_t> bytes) {
  auto rec = recover_framed(bytes);
  if (!rec) {
    return rec.status().with_context("read_checkpoint");
  }
  if (rec->header_from_replica) {
    return Status::corrupt_data("frame header damaged")
        .with_context("read_checkpoint");
  }
  for (const auto& c : rec->chunks) {
    if (c.state != ChunkState::kIntact) {
      return c.status.with_context("read_checkpoint");
    }
  }
  // Whole-payload CRC: confirms the chunk walk reassembled exactly what
  // the writer hashed.
  std::uint32_t state = kCrc32cInit;
  for (const auto& c : rec->chunks) {
    state = crc32c_update(state, c.payload);
  }
  if (crc32c_finish(state) != rec->info.payload_crc) {
    return Status::corrupt_data("payload crc mismatch")
        .with_context("read_checkpoint");
  }

  RecoveryPolicy strict;
  strict.fail_on_any_loss = true;
  auto report = recover_checkpoint(bytes, strict);
  if (!report) {
    return report.status();
  }
  return std::move(report->field);
}

}  // namespace lcp::compress
