#pragma once
// Codec registry: name -> Compressor, so studies can be configured by
// string ("sz", "zfp") exactly as the paper's Table III partitions are.

#include <memory>
#include <string>
#include <vector>

#include "compress/common/codec.hpp"

namespace lcp::compress {

/// Compressor family ids used across studies and model partitions.
enum class CodecId : std::uint8_t { kSz = 0, kZfp = 1 };

[[nodiscard]] const char* codec_name(CodecId id) noexcept;

/// Both codecs, in paper order {SZ, ZFP}.
[[nodiscard]] const std::vector<CodecId>& all_codecs();

/// Creates a codec instance. Never fails for a valid id.
[[nodiscard]] std::unique_ptr<Compressor> make_compressor(CodecId id);

/// Looks up by name ("sz"/"zfp", case-sensitive).
[[nodiscard]] Expected<std::unique_ptr<Compressor>> make_compressor(
    const std::string& name);

/// Every name make_compressor(name) accepts, for exhaustive sweeps
/// (fuzzing, round-trip matrices): {"sz", "sz2", "zfp", "lossless"}.
[[nodiscard]] const std::vector<std::string>& registered_codec_names();

/// Decompresses any valid container by routing on its codec field.
[[nodiscard]] Expected<DecompressResult> decompress_any(
    std::span<const std::uint8_t> container);

}  // namespace lcp::compress
