#pragma once
// Resilient chunked frame format for checkpoint containers. A monolithic
// compressed dump dies wholesale on one flipped bit; a framed dump splits
// the payload into CRC32C-protected chunks so corruption is detected and
// contained, and a damaged stream can still surrender its intact chunks.
//
// Layout (all integers little-endian):
//
//   FramedStream := FrameHeader Chunk* FrameTrailer
//   FrameHeader  := magic "LCPF" | version u8 | flags u8 | reserved u16 |
//                   chunk_count u32 | nominal chunk_bytes u64 (0 = variable) |
//                   payload_bytes u64 | payload_crc u32 | header_crc u32
//   Chunk        := magic "LCFK" | seq u32 | length u32 | crc u32 |
//                   bytes[length]
//   FrameTrailer := magic "LCPT" | <same body and header_crc as FrameHeader>
//
// Each chunk's CRC32C covers its seq and length fields as well as its
// payload, so header tampering trips the same check as payload corruption.
// The trailer is a redundant replica of the header: a reader whose head
// bytes are damaged can still learn the chunk layout from the tail.
//
// Two read paths:
//   read_framed     — strict: every chunk in order, every CRC verified,
//                     totals reconciled; any violation is a typed error.
//   recover_framed  — graceful degradation: walks a damaged or truncated
//                     stream, resynchronizes on chunk magics, and returns
//                     every chunk whose CRC still verifies, plus a
//                     per-chunk damage report.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "support/checksum.hpp"
#include "support/status.hpp"

namespace lcp::compress {

inline constexpr std::size_t kFrameHeaderBytes = 36;
inline constexpr std::size_t kFrameTrailerBytes = 36;
inline constexpr std::size_t kChunkHeaderBytes = 16;
inline constexpr std::uint8_t kFrameVersion = 1;

/// flags bit 0: chunk payloads are self-contained codec containers
/// (checkpoint mode, see checkpoint.hpp) rather than an arbitrary byte
/// stream split at nominal chunk boundaries.
inline constexpr std::uint8_t kFrameFlagCheckpoint = 0x01;
/// flags bit 1: chunk payloads are manifest-journal entries, one framed
/// generation record per chunk (core/incremental_checkpoint.hpp). The
/// per-chunk CRC makes a tampered generation fail closed while the rest
/// of the journal stays readable, and the trailer replica protects the
/// entry layout exactly as it does for checkpoints.
inline constexpr std::uint8_t kFrameFlagJournal = 0x02;

/// Upper bound on chunk_count accepted from a (possibly hostile) header,
/// checked before any allocation. 2^20 chunks of 1 MiB covers a 1 TB dump.
inline constexpr std::uint32_t kMaxFrameChunks = 1u << 20;

struct FrameParams {
  std::size_t chunk_bytes = 64 * 1024;  ///< byte-mode split size
  std::uint8_t flags = 0;
};

/// Parsed frame header (or trailer replica) fields.
struct FrameInfo {
  std::uint8_t version = kFrameVersion;
  std::uint8_t flags = 0;
  std::uint32_t chunk_count = 0;
  std::uint64_t chunk_bytes = 0;  ///< nominal; 0 = variable-length chunks
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
};

/// Streaming frame builder. Either feed bytes with append() (byte mode:
/// the writer cuts nominal chunk_bytes chunks) or emit explicit chunks
/// with append_chunk() (variable mode; the header's nominal size is 0).
/// The two modes must not be mixed on one writer.
class FramedWriter {
 public:
  explicit FramedWriter(FrameParams params);

  /// Byte-mode streaming: buffers and emits nominal-size chunks.
  void append(std::span<const std::uint8_t> data);

  /// Emits `data` as one explicit chunk (variable-length mode).
  void append_chunk(std::span<const std::uint8_t> data);

  /// Flushes any pending bytes, writes header and trailer, and returns
  /// the framed stream. The writer is spent afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  // --- Producer API (streaming writers) ---------------------------------
  //
  // A streaming writer ships frame bytes while later payload is still
  // being produced: it drains whole emitted chunks with take_emitted(),
  // writes them at the running wire offset (the first chunk lands at
  // offset kFrameHeaderBytes), and at the end back-patches the header —
  // whose chunk count and payload CRC are only known then — at offset 0.
  // header + drained bodies + tail.body + trailer concatenate to exactly
  // the bytes finish() would have produced (asserted in framing tests).

  /// Moves out the chunk bytes emitted since the last drain. Pending
  /// partial byte-mode chunks stay buffered until they fill or finish.
  [[nodiscard]] std::vector<std::uint8_t> take_emitted();

  /// Terminal records of a streamed frame.
  struct FrameTail {
    std::vector<std::uint8_t> body;     ///< chunks not yet drained
    std::vector<std::uint8_t> header;   ///< kFrameHeaderBytes record
    std::vector<std::uint8_t> trailer;  ///< kFrameTrailerBytes replica
  };

  /// Flushes any pending bytes and seals the frame. The writer is spent
  /// afterwards; the caller owns placing the three parts on the wire.
  [[nodiscard]] FrameTail finish_streaming();

  [[nodiscard]] std::uint32_t chunks_emitted() const noexcept {
    return chunks_;
  }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return payload_;
  }

 private:
  enum class Mode : std::uint8_t { kUnset, kBytes, kChunks };

  void emit_chunk(std::span<const std::uint8_t> data);

  FrameParams params_;
  Mode mode_ = Mode::kUnset;
  std::vector<std::uint8_t> body_;
  std::vector<std::uint8_t> pending_;
  std::uint32_t chunks_ = 0;
  std::uint64_t payload_ = 0;
  std::uint32_t payload_crc_state_ = kCrc32cInit;
};

/// One-shot byte-mode framing of `payload`.
[[nodiscard]] std::vector<std::uint8_t> frame_payload(
    std::span<const std::uint8_t> payload, const FrameParams& params = {});

/// Bytes the frame adds on top of `payload_bytes` at the given chunk size
/// (header + trailer + per-chunk headers). This is the wire/storage cost
/// the tuning layer prices into the energy model.
[[nodiscard]] std::size_t frame_overhead_bytes(std::size_t payload_bytes,
                                               std::size_t chunk_bytes);

/// Parses the frame header; falls back to the trailer replica when the
/// head is damaged. Fails only when both copies are unreadable.
[[nodiscard]] Expected<FrameInfo> probe_frame(
    std::span<const std::uint8_t> bytes);

/// Strict decode: header valid, trailer replica identical, every chunk in
/// sequence with a verified CRC, concatenated length and whole-payload
/// CRC matching the header. Returns the reassembled payload.
[[nodiscard]] Expected<std::vector<std::uint8_t>> read_framed(
    std::span<const std::uint8_t> bytes);

enum class ChunkState : std::uint8_t {
  kIntact = 0,   ///< located, CRC verified, length consistent
  kCorrupt = 1,  ///< located but failed CRC or length validation
  kMissing = 2,  ///< never located (lost to truncation/splice/overwrite)
};

[[nodiscard]] std::string_view chunk_state_name(ChunkState state) noexcept;

/// Verdict for one expected chunk of a damaged stream.
struct ChunkReport {
  std::uint32_t seq = 0;
  ChunkState state = ChunkState::kMissing;
  /// Borrows from the recovered stream's bytes; empty unless intact.
  std::span<const std::uint8_t> payload;
  Status status;  ///< why the chunk is not intact (OK when intact)
};

/// Result of walking a damaged frame stream. `chunks` always has
/// info.chunk_count entries, one per expected chunk.
struct FrameRecovery {
  FrameInfo info;
  bool header_from_replica = false;
  std::vector<ChunkReport> chunks;

  [[nodiscard]] std::size_t intact_chunks() const noexcept;
  [[nodiscard]] std::uint64_t bytes_recovered() const noexcept;
  /// Fraction of expected chunks recovered intact (1.0 when empty).
  [[nodiscard]] double chunk_recovered_fraction() const noexcept;
  [[nodiscard]] bool complete() const noexcept;

  /// Byte-mode only (info.chunk_bytes > 0): the payload with every lost
  /// chunk's byte range zero-filled — the RecoveryPolicy fill for opaque
  /// payloads.
  [[nodiscard]] std::vector<std::uint8_t> assemble_zero_filled() const;
};

/// Graceful-degradation decode. Fails only when neither header copy is
/// readable (the chunk layout is unknowable); any other damage degrades
/// to per-chunk verdicts. The returned payload spans borrow from `bytes`.
[[nodiscard]] Expected<FrameRecovery> recover_framed(
    std::span<const std::uint8_t> bytes);

}  // namespace lcp::compress
