#include "compress/common/container.hpp"

#include "support/bytestream.hpp"

namespace lcp::compress {
namespace {

constexpr std::uint32_t kMagic = 0x4350434cU;  // "LCPC" little-endian
constexpr std::uint8_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> build_container(const std::string& codec,
                                          const ErrorBound& bound,
                                          const data::Dims& dims,
                                          const std::string& field_name,
                                          std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.write_u32(kMagic);
  w.write_u8(kVersion);
  w.write_string(codec);
  w.write_u8(static_cast<std::uint8_t>(bound.mode));
  w.write_f64(bound.value);
  w.write_u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t e : dims.extents()) {
    w.write_u64(e);
  }
  w.write_string(field_name);
  w.write_u64(payload.size());
  w.write_bytes(payload);
  return w.finish();
}

Expected<ContainerView> parse_container(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto magic = r.read_u32();
  if (!magic || *magic != kMagic) {
    return Status::corrupt_data("bad container magic");
  }
  auto version = r.read_u8();
  if (!version || *version != kVersion) {
    return Status::unsupported("unknown container version");
  }
  ContainerView view;
  auto codec = r.read_string();
  if (!codec) {
    return codec.status();
  }
  view.codec = std::move(*codec);

  auto mode = r.read_u8();
  if (!mode ||
      *mode > static_cast<std::uint8_t>(BoundMode::kPointwiseRelative)) {
    return Status::unsupported("unknown bound mode in container");
  }
  auto value = r.read_f64();
  if (!value) {
    return value.status();
  }
  view.bound = ErrorBound{static_cast<BoundMode>(*mode), *value};

  auto rank = r.read_u8();
  if (!rank || *rank == 0 || *rank > 4) {
    return Status::corrupt_data("container rank out of range");
  }
  std::vector<std::size_t> extents;
  extents.reserve(*rank);
  std::uint64_t elements = 1;
  for (std::uint8_t i = 0; i < *rank; ++i) {
    auto e = r.read_u64();
    if (!e || *e == 0) {
      return Status::corrupt_data("container extent invalid");
    }
    // Overflow-safe product check before trusting the header with any
    // allocation downstream.
    if (*e > kMaxContainerElements || elements > kMaxContainerElements / *e) {
      return Status::corrupt_data("container dims exceed element limit");
    }
    elements *= *e;
    extents.push_back(static_cast<std::size_t>(*e));
  }
  view.dims = data::Dims{std::move(extents)};

  auto name = r.read_string();
  if (!name) {
    return name.status();
  }
  view.field_name = std::move(*name);

  auto payload_size = r.read_u64();
  if (!payload_size) {
    return payload_size.status();
  }
  auto payload = r.read_bytes(static_cast<std::size_t>(*payload_size));
  if (!payload) {
    return payload.status();
  }
  view.payload = *payload;
  return view;
}

}  // namespace lcp::compress
