#include "compress/common/framing.hpp"

#include <algorithm>

#include "support/bytestream.hpp"

namespace lcp::compress {
namespace {

constexpr std::uint32_t kFrameMagic = 0x4650434CU;    // "LCPF"
constexpr std::uint32_t kTrailerMagic = 0x5450434CU;  // "LCPT"
constexpr std::uint32_t kChunkMagic = 0x4B46434CU;    // "LCFK"

/// Bytes between the magic and the header CRC.
constexpr std::size_t kHeaderBodyBytes = 28;

std::uint32_t load_u32(std::span<const std::uint8_t> bytes,
                       std::size_t pos) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

void store_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Serializes the 28-byte header body shared by header and trailer.
std::vector<std::uint8_t> header_body(const FrameInfo& info) {
  ByteWriter w;
  w.write_u8(info.version);
  w.write_u8(info.flags);
  w.write_u16(0);  // reserved
  w.write_u32(info.chunk_count);
  w.write_u64(info.chunk_bytes);
  w.write_u64(info.payload_bytes);
  w.write_u32(info.payload_crc);
  return w.finish();
}

/// CRC over one chunk's (seq, length, payload) — the chunk integrity unit.
std::uint32_t chunk_crc(std::uint32_t seq, std::uint32_t length,
                        std::span<const std::uint8_t> payload) noexcept {
  std::uint8_t head[8];
  store_u32(head, seq);
  store_u32(head + 4, length);
  std::uint32_t state = crc32c_update(kCrc32cInit, {head, sizeof(head)});
  state = crc32c_update(state, payload);
  return crc32c_finish(state);
}

/// Parses a header/trailer record at `pos` and validates its CRC.
Expected<FrameInfo> parse_record_at(std::span<const std::uint8_t> bytes,
                                    std::size_t pos, std::uint32_t magic) {
  if (bytes.size() < pos + kFrameHeaderBytes || bytes.size() < pos) {
    return Status::corrupt_data("frame record truncated");
  }
  if (load_u32(bytes, pos) != magic) {
    return Status::corrupt_data("bad frame record magic");
  }
  const auto body = bytes.subspan(pos + 4, kHeaderBodyBytes);
  const std::uint32_t stored_crc = load_u32(bytes, pos + 4 + kHeaderBodyBytes);
  if (crc32c(body) != stored_crc) {
    return Status::corrupt_data("frame record crc mismatch");
  }
  ByteReader r{body};
  FrameInfo info;
  info.version = *r.read_u8();
  info.flags = *r.read_u8();
  (void)*r.read_u16();  // reserved
  info.chunk_count = *r.read_u32();
  info.chunk_bytes = *r.read_u64();
  info.payload_bytes = *r.read_u64();
  info.payload_crc = *r.read_u32();
  if (info.version != kFrameVersion) {
    return Status::unsupported("unknown frame version");
  }
  return info;
}

/// Sanity limits a CRC-valid header must still satisfy against the actual
/// stream before anything is allocated from its claims. Recovery passes
/// allow_truncated: a cut stream legitimately holds fewer bytes than the
/// header promises, and the per-chunk walk re-checks every length against
/// the real stream anyway.
Status validate_info(const FrameInfo& info, std::span<const std::uint8_t> bytes,
                     bool allow_truncated = false) {
  if (info.chunk_count > kMaxFrameChunks) {
    return Status::corrupt_data("frame chunk count exceeds limit");
  }
  if (!allow_truncated && info.payload_bytes > bytes.size()) {
    return Status::corrupt_data("frame payload larger than stream");
  }
  if (info.chunk_bytes > 0) {
    const std::uint64_t expected =
        info.payload_bytes == 0
            ? 0
            : (info.payload_bytes + info.chunk_bytes - 1) / info.chunk_bytes;
    if (expected != info.chunk_count) {
      return Status::corrupt_data("frame chunk count inconsistent with sizes");
    }
  }
  return Status::ok();
}

}  // namespace

FramedWriter::FramedWriter(FrameParams params) : params_(params) {
  LCP_REQUIRE(params_.chunk_bytes > 0, "frame chunk size must be positive");
}

void FramedWriter::append(std::span<const std::uint8_t> data) {
  LCP_REQUIRE(mode_ != Mode::kChunks,
              "FramedWriter: append after append_chunk");
  mode_ = Mode::kBytes;
  pending_.insert(pending_.end(), data.begin(), data.end());
  while (pending_.size() >= params_.chunk_bytes) {
    emit_chunk({pending_.data(), params_.chunk_bytes});
    pending_.erase(pending_.begin(),
                   pending_.begin() +
                       static_cast<std::ptrdiff_t>(params_.chunk_bytes));
  }
}

void FramedWriter::append_chunk(std::span<const std::uint8_t> data) {
  LCP_REQUIRE(mode_ != Mode::kBytes,
              "FramedWriter: append_chunk after append");
  mode_ = Mode::kChunks;
  emit_chunk(data);
}

void FramedWriter::emit_chunk(std::span<const std::uint8_t> data) {
  LCP_REQUIRE(chunks_ < kMaxFrameChunks, "frame chunk count exceeds limit");
  LCP_REQUIRE(data.size() <= UINT32_MAX, "frame chunk exceeds u32 length");
  const auto seq = chunks_;
  const auto length = static_cast<std::uint32_t>(data.size());
  std::uint8_t head[kChunkHeaderBytes];
  store_u32(head, kChunkMagic);
  store_u32(head + 4, seq);
  store_u32(head + 8, length);
  store_u32(head + 12, chunk_crc(seq, length, data));
  body_.insert(body_.end(), head, head + sizeof(head));
  body_.insert(body_.end(), data.begin(), data.end());
  payload_crc_state_ = crc32c_update(payload_crc_state_, data);
  payload_ += data.size();
  ++chunks_;
}

std::vector<std::uint8_t> FramedWriter::take_emitted() {
  std::vector<std::uint8_t> out = std::move(body_);
  body_.clear();
  return out;
}

FramedWriter::FrameTail FramedWriter::finish_streaming() {
  if (!pending_.empty()) {
    emit_chunk(pending_);
    pending_.clear();
  }
  FrameInfo info;
  info.version = kFrameVersion;
  info.flags = params_.flags;
  info.chunk_count = chunks_;
  info.chunk_bytes = mode_ == Mode::kChunks ? 0 : params_.chunk_bytes;
  info.payload_bytes = payload_;
  info.payload_crc = crc32c_finish(payload_crc_state_);

  const auto body = header_body(info);
  const std::uint32_t crc = crc32c(body);
  const auto record = [&body, crc](std::uint32_t magic) {
    std::vector<std::uint8_t> r;
    r.reserve(kFrameHeaderBytes);
    const auto put_u32 = [&r](std::uint32_t v) {
      r.push_back(static_cast<std::uint8_t>(v));
      r.push_back(static_cast<std::uint8_t>(v >> 8));
      r.push_back(static_cast<std::uint8_t>(v >> 16));
      r.push_back(static_cast<std::uint8_t>(v >> 24));
    };
    put_u32(magic);
    r.insert(r.end(), body.begin(), body.end());
    put_u32(crc);
    return r;
  };

  FrameTail tail;
  tail.body = std::move(body_);
  body_.clear();
  tail.header = record(kFrameMagic);
  tail.trailer = record(kTrailerMagic);
  return tail;
}

std::vector<std::uint8_t> FramedWriter::finish() {
  FrameTail tail = finish_streaming();
  std::vector<std::uint8_t> out;
  out.reserve(tail.header.size() + tail.body.size() + tail.trailer.size());
  out.insert(out.end(), tail.header.begin(), tail.header.end());
  out.insert(out.end(), tail.body.begin(), tail.body.end());
  out.insert(out.end(), tail.trailer.begin(), tail.trailer.end());
  return out;
}

std::vector<std::uint8_t> frame_payload(std::span<const std::uint8_t> payload,
                                        const FrameParams& params) {
  FramedWriter writer{params};
  writer.append(payload);
  return writer.finish();
}

std::size_t frame_overhead_bytes(std::size_t payload_bytes,
                                 std::size_t chunk_bytes) {
  LCP_REQUIRE(chunk_bytes > 0, "frame chunk size must be positive");
  const std::size_t chunks =
      payload_bytes == 0 ? 0 : (payload_bytes + chunk_bytes - 1) / chunk_bytes;
  return kFrameHeaderBytes + kFrameTrailerBytes + chunks * kChunkHeaderBytes;
}

Expected<FrameInfo> probe_frame(std::span<const std::uint8_t> bytes) {
  auto front = parse_record_at(bytes, 0, kFrameMagic);
  if (front) {
    LCP_RETURN_IF_ERROR(validate_info(*front, bytes));
    return front;
  }
  if (bytes.size() >= kFrameTrailerBytes) {
    auto tail = parse_record_at(bytes, bytes.size() - kFrameTrailerBytes,
                                kTrailerMagic);
    if (tail) {
      LCP_RETURN_IF_ERROR(validate_info(*tail, bytes));
      return tail;
    }
  }
  return front.status().with_context("frame header and trailer replica");
}

Expected<std::vector<std::uint8_t>> read_framed(
    std::span<const std::uint8_t> bytes) {
  auto header = parse_record_at(bytes, 0, kFrameMagic);
  if (!header) {
    return header.status().with_context("frame header");
  }
  LCP_RETURN_IF_ERROR(validate_info(*header, bytes));
  if (bytes.size() < kFrameHeaderBytes + kFrameTrailerBytes) {
    return Status::corrupt_data("framed stream shorter than header+trailer");
  }
  auto trailer = parse_record_at(bytes, bytes.size() - kFrameTrailerBytes,
                                 kTrailerMagic);
  if (!trailer) {
    return trailer.status().with_context("frame trailer");
  }
  if (header->version != trailer->version ||
      header->flags != trailer->flags ||
      header->chunk_count != trailer->chunk_count ||
      header->chunk_bytes != trailer->chunk_bytes ||
      header->payload_bytes != trailer->payload_bytes ||
      header->payload_crc != trailer->payload_crc) {
    return Status::corrupt_data("frame trailer disagrees with header");
  }

  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(header->payload_bytes));
  std::size_t pos = kFrameHeaderBytes;
  const std::size_t body_end = bytes.size() - kFrameTrailerBytes;
  for (std::uint32_t seq = 0; seq < header->chunk_count; ++seq) {
    if (body_end - pos < kChunkHeaderBytes ||
        load_u32(bytes, pos) != kChunkMagic) {
      return Status::corrupt_data("chunk header missing or bad magic")
          .with_context("chunk " + std::to_string(seq));
    }
    const std::uint32_t stored_seq = load_u32(bytes, pos + 4);
    const std::uint32_t length = load_u32(bytes, pos + 8);
    const std::uint32_t stored_crc = load_u32(bytes, pos + 12);
    if (stored_seq != seq) {
      return Status::corrupt_data("chunk out of sequence")
          .with_context("chunk " + std::to_string(seq));
    }
    if (length > body_end - pos - kChunkHeaderBytes) {
      return Status::corrupt_data("chunk length exceeds stream")
          .with_context("chunk " + std::to_string(seq));
    }
    const auto payload = bytes.subspan(pos + kChunkHeaderBytes, length);
    if (chunk_crc(seq, length, payload) != stored_crc) {
      return Status::corrupt_data("chunk crc mismatch")
          .with_context("chunk " + std::to_string(seq));
    }
    out.insert(out.end(), payload.begin(), payload.end());
    pos += kChunkHeaderBytes + length;
  }
  if (pos != body_end) {
    return Status::corrupt_data("trailing garbage between chunks and trailer");
  }
  if (out.size() != header->payload_bytes) {
    return Status::corrupt_data("frame payload size mismatch");
  }
  if (crc32c(out) != header->payload_crc) {
    return Status::corrupt_data("frame payload crc mismatch");
  }
  return out;
}

std::string_view chunk_state_name(ChunkState state) noexcept {
  switch (state) {
    case ChunkState::kIntact:
      return "intact";
    case ChunkState::kCorrupt:
      return "corrupt";
    case ChunkState::kMissing:
      return "missing";
  }
  return "?";
}

std::size_t FrameRecovery::intact_chunks() const noexcept {
  std::size_t n = 0;
  for (const auto& c : chunks) {
    n += c.state == ChunkState::kIntact ? 1 : 0;
  }
  return n;
}

std::uint64_t FrameRecovery::bytes_recovered() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : chunks) {
    if (c.state == ChunkState::kIntact) {
      n += c.payload.size();
    }
  }
  return n;
}

double FrameRecovery::chunk_recovered_fraction() const noexcept {
  if (chunks.empty()) {
    return 1.0;
  }
  return static_cast<double>(intact_chunks()) /
         static_cast<double>(chunks.size());
}

bool FrameRecovery::complete() const noexcept {
  return intact_chunks() == chunks.size();
}

std::vector<std::uint8_t> FrameRecovery::assemble_zero_filled() const {
  if (info.chunk_bytes == 0) {
    return {};  // variable-length chunks have no byte offsets
  }
  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(info.payload_bytes), 0);
  for (const auto& c : chunks) {
    if (c.state != ChunkState::kIntact) {
      continue;
    }
    const std::uint64_t offset =
        static_cast<std::uint64_t>(c.seq) * info.chunk_bytes;
    if (offset > out.size() || c.payload.size() > out.size() - offset) {
      continue;  // length validation should make this unreachable
    }
    std::copy(c.payload.begin(), c.payload.end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  return out;
}

Expected<FrameRecovery> recover_framed(std::span<const std::uint8_t> bytes) {
  FrameRecovery rec;
  auto front = parse_record_at(bytes, 0, kFrameMagic);
  if (front && validate_info(*front, bytes, /*allow_truncated=*/true).is_ok()) {
    rec.info = *front;
  } else {
    // Head is damaged: fall back to the trailer replica. Without either
    // copy the chunk layout is unknowable and recovery cannot start.
    Expected<FrameInfo> tail =
        Status::corrupt_data("stream shorter than a trailer");
    if (bytes.size() >= kFrameTrailerBytes) {
      tail = parse_record_at(bytes, bytes.size() - kFrameTrailerBytes,
                             kTrailerMagic);
    }
    if (!tail) {
      return Status::corrupt_data(
                 "frame header and trailer replica both unreadable")
          .with_context("recover_framed");
    }
    LCP_RETURN_IF_ERROR(validate_info(*tail, bytes, /*allow_truncated=*/true));
    rec.info = *tail;
    rec.header_from_replica = true;
  }

  rec.chunks.resize(rec.info.chunk_count);
  for (std::uint32_t i = 0; i < rec.info.chunk_count; ++i) {
    rec.chunks[i].seq = i;
    rec.chunks[i].state = ChunkState::kMissing;
    rec.chunks[i].status =
        Status::corrupt_data("chunk never located in damaged stream");
  }

  // Walk the body, resynchronizing on chunk magics. A candidate chunk is
  // accepted only when its CRC verifies, which makes false resyncs on
  // magic-shaped payload bytes vanishingly unlikely; on any mismatch the
  // scan advances one byte (the candidate's own length field cannot be
  // trusted).
  std::size_t pos = std::min<std::size_t>(kFrameHeaderBytes, bytes.size());
  while (bytes.size() - pos >= kChunkHeaderBytes) {
    if (load_u32(bytes, pos) != kChunkMagic) {
      ++pos;
      continue;
    }
    const std::uint32_t seq = load_u32(bytes, pos + 4);
    const std::uint32_t length = load_u32(bytes, pos + 8);
    const std::uint32_t stored_crc = load_u32(bytes, pos + 12);
    const bool plausible =
        seq < rec.info.chunk_count &&
        length <= bytes.size() - pos - kChunkHeaderBytes &&
        (rec.info.chunk_bytes == 0 || length <= rec.info.chunk_bytes);
    if (!plausible) {
      ++pos;
      continue;
    }
    const auto payload = bytes.subspan(pos + kChunkHeaderBytes, length);
    if (chunk_crc(seq, length, payload) != stored_crc) {
      if (rec.chunks[seq].state == ChunkState::kMissing) {
        rec.chunks[seq].state = ChunkState::kCorrupt;
        rec.chunks[seq].status =
            Status::corrupt_data("chunk crc mismatch")
                .with_context("chunk " + std::to_string(seq));
      }
      ++pos;
      continue;
    }
    if (rec.chunks[seq].state != ChunkState::kIntact) {
      rec.chunks[seq].state = ChunkState::kIntact;
      rec.chunks[seq].payload = payload;
      rec.chunks[seq].status = Status::ok();
    }
    pos += kChunkHeaderBytes + length;
  }

  // Byte-mode length validation: an intact-CRC chunk whose length does
  // not match its slot (a spliced chunk from another stream) is demoted.
  if (rec.info.chunk_bytes > 0) {
    for (auto& c : rec.chunks) {
      if (c.state != ChunkState::kIntact) {
        continue;
      }
      const std::uint64_t offset =
          static_cast<std::uint64_t>(c.seq) * rec.info.chunk_bytes;
      const std::uint64_t expected =
          std::min<std::uint64_t>(rec.info.chunk_bytes,
                                  rec.info.payload_bytes - offset);
      if (c.payload.size() != expected) {
        c.state = ChunkState::kCorrupt;
        c.payload = {};
        c.status = Status::corrupt_data("chunk length inconsistent with slot")
                       .with_context("chunk " + std::to_string(c.seq));
      }
    }
  }
  return rec;
}

}  // namespace lcp::compress
