#include "compress/zfp/negabinary.hpp"

// Header-inline; TU anchors the library object.
