#pragma once
// ZFP-class lossy compressor. 4^d blocks are promoted to
// block-floating-point int64, decorrelated with an exact integer lifting
// transform, negabinary-recoded and embedded-coded. Two modes, selected by
// the ErrorBound passed to compress():
//  - fixed accuracy (BoundMode::kAbsolute): planes are kept down to a
//    per-block verified cutoff guaranteeing |x - x'| <= tolerance;
//  - fixed rate (BoundMode::kFixedRate): every block gets exactly
//    rate * 4^d bits (headers included), giving hard size guarantees and
//    random block access at the cost of no error bound.

#include "compress/common/codec.hpp"

namespace lcp::zfp {

class ZfpCompressor final : public compress::Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "zfp"; }

  [[nodiscard]] Expected<compress::CompressResult> compress(
      const data::Field& field,
      const compress::ErrorBound& bound) const override;

  [[nodiscard]] Expected<compress::DecompressResult> decompress(
      std::span<const std::uint8_t> container) const override;
};

}  // namespace lcp::zfp
