#pragma once
// Block partitioning for the ZFP-class codec: fields are processed in 4^d
// blocks (d = effective rank, 1..3). Boundary blocks are padded by edge
// replication on gather; scatter writes only the in-domain region.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "data/field.hpp"

namespace lcp::zfp {

/// Effective extents: rank-4 fields merge their two slowest axes (the
/// transform is at most 3-D), lower ranks pass through.
[[nodiscard]] std::vector<std::size_t> effective_extents(const data::Dims& dims);

/// Geometry of the 4^d block grid over a field.
class BlockGrid {
 public:
  explicit BlockGrid(std::vector<std::size_t> extents);

  [[nodiscard]] std::size_t rank() const noexcept { return ext_.size(); }
  [[nodiscard]] std::size_t block_elements() const noexcept {
    return std::size_t{1} << (2 * rank());  // 4^rank
  }
  [[nodiscard]] std::size_t block_count() const noexcept;

  /// Copies block `b` into `out` (size block_elements()), replicating edge
  /// samples into the padding of boundary blocks.
  void gather(std::span<const float> field, std::size_t b,
              std::span<float> out) const;

  /// Writes block `b` from `in` back into `field`, skipping padding.
  void scatter(std::span<const float> in, std::size_t b,
               std::span<float> field) const;

 private:
  struct BlockBox {
    std::array<std::size_t, 3> origin{};
    std::array<std::size_t, 3> valid{};  // in-domain extent per axis (1..4)
  };
  [[nodiscard]] BlockBox box(std::size_t b) const;

  std::vector<std::size_t> ext_;     // field extents, padded to rank entries
  std::vector<std::size_t> blocks_;  // block counts per axis
};

}  // namespace lcp::zfp
