#include "compress/zfp/transform.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "support/status.hpp"

namespace lcp::zfp {
namespace {

/// Pair S-transform: (a, b) -> (s, d) with s = a + (d >> 1), d = b - a.
/// Inverse: a = s - (d >> 1), b = a + d. Exact for all int64 inputs without
/// overflow as long as |a|,|b| stay below 2^62.
inline void fwd_pair(std::int64_t& a, std::int64_t& b) noexcept {
  const std::int64_t d = b - a;
  const std::int64_t s = a + (d >> 1);
  a = s;
  b = d;
}

inline void inv_pair(std::int64_t& s, std::int64_t& d) noexcept {
  const std::int64_t a = s - (d >> 1);
  const std::int64_t b = a + d;
  s = a;
  d = b;
}

/// Frequency weight of an intra-line position after forward_lift4:
/// slot 0 = level-2 smooth, slot 1 = level-2 detail, slots 2,3 = level-1
/// details.
constexpr std::array<unsigned, 4> kSlotWeight = {0, 1, 2, 2};

}  // namespace

void forward_lift4(std::int64_t* p, std::size_t s) noexcept {
  std::int64_t x0 = p[0];
  std::int64_t x1 = p[s];
  std::int64_t x2 = p[2 * s];
  std::int64_t x3 = p[3 * s];
  fwd_pair(x0, x1);  // x0 = sA, x1 = dA
  fwd_pair(x2, x3);  // x2 = sB, x3 = dB
  fwd_pair(x0, x2);  // x0 = ss, x2 = ds
  p[0] = x0;       // smooth
  p[s] = x2;       // level-2 detail
  p[2 * s] = x1;   // level-1 detail A
  p[3 * s] = x3;   // level-1 detail B
}

void inverse_lift4(std::int64_t* p, std::size_t s) noexcept {
  std::int64_t ss = p[0];
  std::int64_t ds = p[s];
  std::int64_t dA = p[2 * s];
  std::int64_t dB = p[3 * s];
  inv_pair(ss, ds);  // ss = sA, ds = sB
  std::int64_t sA = ss;
  std::int64_t sB = ds;
  inv_pair(sA, dA);  // sA = x0, dA = x1
  inv_pair(sB, dB);  // sB = x2, dB = x3
  p[0] = sA;
  p[s] = dA;
  p[2 * s] = sB;
  p[3 * s] = dB;
}

void forward_transform(std::span<std::int64_t> block, std::size_t rank) noexcept {
  if (rank == 1) {
    forward_lift4(block.data(), 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t i = 0; i < 4; ++i) {
      forward_lift4(block.data() + i * 4, 1);  // along axis 1 (rows)
    }
    for (std::size_t j = 0; j < 4; ++j) {
      forward_lift4(block.data() + j, 4);  // along axis 0 (columns)
    }
    return;
  }
  // rank 3: lines along axis 2, then axis 1, then axis 0.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      forward_lift4(block.data() + (i * 4 + j) * 4, 1);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      forward_lift4(block.data() + i * 16 + k, 4);
    }
  }
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      forward_lift4(block.data() + j * 4 + k, 16);
    }
  }
}

void inverse_transform(std::span<std::int64_t> block, std::size_t rank) noexcept {
  if (rank == 1) {
    inverse_lift4(block.data(), 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t j = 0; j < 4; ++j) {
      inverse_lift4(block.data() + j, 4);
    }
    for (std::size_t i = 0; i < 4; ++i) {
      inverse_lift4(block.data() + i * 4, 1);
    }
    return;
  }
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      inverse_lift4(block.data() + j * 4 + k, 16);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      inverse_lift4(block.data() + i * 16 + k, 4);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      inverse_lift4(block.data() + (i * 4 + j) * 4, 1);
    }
  }
}

const std::vector<std::uint16_t>& coefficient_order(std::size_t rank) {
  LCP_REQUIRE(rank >= 1 && rank <= 3, "coefficient order rank must be 1..3");
  static const auto make_order = [](std::size_t r) {
    const std::size_t n = std::size_t{1} << (2 * r);
    std::vector<std::uint16_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    auto weight = [r](std::uint16_t idx) {
      unsigned total = 0;
      std::size_t rem = idx;
      for (std::size_t a = 0; a < r; ++a) {
        total += kSlotWeight[rem & 3];
        rem >>= 2;
      }
      return total;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint16_t a, std::uint16_t b) {
                       return weight(a) < weight(b);
                     });
    return order;
  };
  static const std::vector<std::uint16_t> order1 = make_order(1);
  static const std::vector<std::uint16_t> order2 = make_order(2);
  static const std::vector<std::uint16_t> order3 = make_order(3);
  switch (rank) {
    case 1:
      return order1;
    case 2:
      return order2;
    default:
      return order3;
  }
}

}  // namespace lcp::zfp
