#include "compress/zfp/zfp_compressor.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cmath>
#include <vector>

#include "compress/common/container.hpp"
#include "compress/zfp/block.hpp"
#include "compress/zfp/embedded_coder.hpp"
#include "compress/zfp/negabinary.hpp"
#include "compress/zfp/transform.hpp"
#include "support/bytestream.hpp"
#include "support/timer.hpp"

namespace lcp::zfp {
namespace {

constexpr std::uint8_t kPayloadVersion = 1;

/// Fixed-point precision: samples scale to |i| <= 2^kQ; the 3-axis lifting
/// transform grows magnitudes by at most 8x, staying well inside int64.
constexpr int kQ = 58;

/// Guard bits absorbing the inverse transform's worst-case amplification of
/// truncation error (~1.5 per lifting step over 6 steps, ~2^4.5 total, plus
/// rounding; 2^6 is a proven-safe budget — see the analysis in this file's
/// accompanying tests).
constexpr int kGuardBits = 6;

/// Exponent e with |v| < 2^e for the block maximum magnitude `m` (m > 0).
int block_exponent(float m) noexcept { return std::ilogb(m) + 1; }

/// Analytic lower bound for the lowest bit plane that must be kept for
/// tolerance `eb` in a block with exponent `emax`: the worst-case inverse-
/// transform amplification (kGuardBits) makes it provably safe, but it is
/// pessimistic by several planes for typical data. May be negative (keep
/// everything) or > 63 (keep none).
int min_plane(double eb, int emax) noexcept {
  return std::ilogb(eb) + kQ - emax - kGuardBits;
}

/// When the fixed-point grid itself is coarser than the tolerance the block
/// cannot be coded losslessly enough; it is stored verbatim.
bool needs_verbatim(double eb, int emax) noexcept {
  return std::ilogb(eb) <= emax - (kQ + 2);
}

struct BlockScratch {
  std::vector<float> samples;
  std::vector<std::int64_t> ints;
  std::vector<std::int64_t> pre_transform;
  std::vector<std::int64_t> probe;
  std::vector<std::uint64_t> nb;
};

/// Exact int-domain reconstruction error when planes below `p_lo` are
/// dropped: truncate, inverse-transform, compare against the pre-transform
/// integers. One inverse transform per candidate — cheap next to entropy
/// coding, and it turns the worst-case guard analysis into a per-block
/// measurement.
std::int64_t truncation_error(const BlockScratch& scratch,
                              std::span<const std::uint16_t> order,
                              std::size_t rank, int p_lo,
                              std::vector<std::int64_t>& probe) {
  const std::size_t n = scratch.nb.size();
  std::uint64_t mask = ~std::uint64_t{0};
  if (p_lo >= 64) {
    mask = 0;
  } else if (p_lo > 0) {
    mask = ~((std::uint64_t{1} << static_cast<unsigned>(p_lo)) - 1);
  }
  probe.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    probe[order[i]] = from_negabinary(scratch.nb[i] & mask);
  }
  inverse_transform(probe, rank);
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max<std::int64_t>(
        worst, std::llabs(probe[i] - scratch.pre_transform[i]));
  }
  return worst;
}

/// Chooses the highest cutoff plane whose verified truncation error fits
/// the integer-domain budget. Starts one plane below the ideal cutoff and
/// walks down toward the analytic worst-case plane (which needs no
/// verification by construction).
int choose_min_plane(const BlockScratch& scratch,
                     std::span<const std::uint16_t> order, std::size_t rank,
                     double eb, int emax,
                     std::vector<std::int64_t>& probe) {
  const double eb_int = eb * std::ldexp(1.0, kQ - emax);
  // Budget: leave room for the fixed-point conversion error (1 int unit)
  // and the float32 rounding of the final reconstruction (half an ulp at
  // the block's magnitude, 2^(emax-24) in float = 2^(kQ-24) int units).
  const double float_ulp_reserve = std::ldexp(1.0, kQ - 24);
  const double budget_f = eb_int - float_ulp_reserve - 1.0;
  if (budget_f < 0.0) {
    // Encode everything: the reconstruction is then within one conversion
    // rounding of the original float, which casts back to it exactly.
    return 0;
  }
  const auto budget = static_cast<std::int64_t>(budget_f);
  const int analytic = std::clamp(min_plane(eb, emax), 0, 64);
  const int ideal = std::clamp(min_plane(eb, emax) + kGuardBits - 1, 0, 64);
  for (int p = ideal; p > analytic; --p) {
    if (truncation_error(scratch, order, rank, p, probe) <= budget) {
      return p;
    }
  }
  return analytic;
}

void encode_block(std::span<const float> samples, std::size_t rank, double eb,
                  BlockScratch& scratch, BitWriter& writer) {
  const std::size_t n = samples.size();
  float maxabs = 0.0F;
  for (float v : samples) {
    maxabs = std::max(maxabs, std::fabs(v));
  }
  if (maxabs == 0.0F) {
    writer.write_bit(false);  // zero block
    return;
  }
  writer.write_bit(true);

  const int emax = block_exponent(maxabs);
  if (needs_verbatim(eb, emax)) {
    writer.write_bit(true);  // verbatim
    for (float v : samples) {
      writer.write_bits(std::bit_cast<std::uint32_t>(v), 32);
    }
    return;
  }
  writer.write_bit(false);  // coded
  writer.write_bits(static_cast<std::uint64_t>(emax + 256), 9);

  scratch.ints.resize(n);
  const double scale = std::ldexp(1.0, kQ - emax);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.ints[i] = std::llround(static_cast<double>(samples[i]) * scale);
  }
  scratch.pre_transform = scratch.ints;
  forward_transform(scratch.ints, rank);

  const auto& order = coefficient_order(rank);
  scratch.nb.resize(n);
  std::uint64_t all = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scratch.nb[i] = to_negabinary(scratch.ints[order[i]]);
    all |= scratch.nb[i];
  }

  const int p_lo =
      choose_min_plane(scratch, order, rank, eb, emax, scratch.probe);
  const int p_hi = all == 0 ? -1 : std::bit_width(all) - 1;
  // Both plane bounds travel with the block: p_hi is only recomputable by
  // the encoder, and p_lo is chosen adaptively per block. 64 means "no
  // planes encoded".
  const int stored_hi = p_hi < p_lo ? 64 : p_hi;
  writer.write_bits(static_cast<std::uint64_t>(stored_hi), 7);
  writer.write_bits(static_cast<std::uint64_t>(std::min(p_lo, 63)), 6);
  if (stored_hi == 64) {
    return;  // nothing above the cutoff: coefficients decode as zero
  }
  encode_block_planes(scratch.nb, static_cast<unsigned>(stored_hi),
                      static_cast<unsigned>(std::min(p_lo, 63)), writer);
}

bool decode_block(std::span<float> samples, std::size_t rank, double eb,
                  BlockScratch& scratch, BitReader& reader) {
  (void)eb;  // plane bounds now travel in the stream
  const std::size_t n = samples.size();
  if (!reader.read_bit()) {
    std::fill(samples.begin(), samples.end(), 0.0F);
    return !reader.overflowed();
  }
  if (reader.read_bit()) {  // verbatim
    for (std::size_t i = 0; i < n; ++i) {
      samples[i] = std::bit_cast<float>(
          static_cast<std::uint32_t>(reader.read_bits(32)));
    }
    return !reader.overflowed();
  }
  const int emax = static_cast<int>(reader.read_bits(9)) - 256;
  const int stored_hi = static_cast<int>(reader.read_bits(7));
  const int p_lo = static_cast<int>(reader.read_bits(6));
  if (reader.overflowed() || stored_hi > 64) {
    return false;
  }

  scratch.nb.assign(n, 0);
  if (stored_hi != 64) {
    if (p_lo > stored_hi) {
      return false;  // inconsistent plane bounds: corrupt stream
    }
    if (!decode_block_planes(scratch.nb, static_cast<unsigned>(stored_hi),
                             static_cast<unsigned>(p_lo), reader)) {
      return false;
    }
  }

  const auto& order = coefficient_order(rank);
  scratch.ints.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.ints[order[i]] = from_negabinary(scratch.nb[i]);
  }
  inverse_transform(scratch.ints, rank);

  const double inv_scale = std::ldexp(1.0, emax - kQ);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] =
        static_cast<float>(static_cast<double>(scratch.ints[i]) * inv_scale);
  }
  return true;
}


/// Fixed-rate block layout: 9 bits of biased exponent (0 = all-zero
/// block), 7 bits of top plane, then exactly budget-16 bits of capped
/// embedded planes. Every block costs precisely `budget_bits`.
void encode_block_fixed_rate(std::span<const float> samples, std::size_t rank,
                             std::uint64_t budget_bits, BlockScratch& scratch,
                             BitWriter& writer) {
  const std::uint64_t start = writer.bit_count();
  const std::size_t n = samples.size();
  float maxabs = 0.0F;
  for (float v : samples) {
    maxabs = std::max(maxabs, std::fabs(v));
  }
  bool zero = maxabs == 0.0F;
  int p_hi = 0;
  if (!zero) {
    const int emax = block_exponent(maxabs);
    scratch.ints.resize(n);
    const double scale = std::ldexp(1.0, kQ - emax);
    for (std::size_t i = 0; i < n; ++i) {
      scratch.ints[i] = std::llround(static_cast<double>(samples[i]) * scale);
    }
    forward_transform(scratch.ints, rank);
    const auto& order = coefficient_order(rank);
    scratch.nb.resize(n);
    std::uint64_t all = 0;
    for (std::size_t i = 0; i < n; ++i) {
      scratch.nb[i] = to_negabinary(scratch.ints[order[i]]);
      all |= scratch.nb[i];
    }
    if (all == 0) {
      zero = true;
    } else {
      p_hi = std::bit_width(all) - 1;
      writer.write_bits(static_cast<std::uint64_t>(emax + 256), 9);
      writer.write_bits(static_cast<std::uint64_t>(p_hi), 7);
      encode_block_planes_capped(scratch.nb, static_cast<unsigned>(p_hi),
                                 budget_bits - 16, writer);
    }
  }
  if (zero) {
    writer.write_bits(0, 9);
  }
  while (writer.bit_count() - start < budget_bits) {
    writer.write_bit(false);
  }
}

bool decode_block_fixed_rate(std::span<float> samples, std::size_t rank,
                             std::uint64_t budget_bits, BlockScratch& scratch,
                             BitReader& reader) {
  const std::uint64_t start = reader.bit_position();
  const std::size_t n = samples.size();
  const int emax_raw = static_cast<int>(reader.read_bits(9));
  bool ok = true;
  if (emax_raw == 0) {
    std::fill(samples.begin(), samples.end(), 0.0F);
  } else {
    const int emax = emax_raw - 256;
    const int p_hi = static_cast<int>(reader.read_bits(7));
    if (p_hi > 63) {
      return false;
    }
    scratch.nb.assign(n, 0);
    ok = decode_block_planes_capped(scratch.nb, static_cast<unsigned>(p_hi),
                                    budget_bits - 16, reader);
    const auto& order = coefficient_order(rank);
    scratch.ints.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      scratch.ints[order[i]] = from_negabinary(scratch.nb[i]);
    }
    inverse_transform(scratch.ints, rank);
    const double inv_scale = std::ldexp(1.0, emax - kQ);
    for (std::size_t i = 0; i < n; ++i) {
      samples[i] =
          static_cast<float>(static_cast<double>(scratch.ints[i]) * inv_scale);
    }
  }
  // Skip to the fixed block boundary.
  while (reader.bit_position() - start < budget_bits &&
         !reader.overflowed()) {
    (void)reader.read_bit();
  }
  return ok && !reader.overflowed();
}

/// Bits per block for a requested rate (headers included), floored at the
/// 17 bits a non-trivial block needs.
Expected<std::uint64_t> fixed_rate_block_bits(double rate,
                                              std::size_t block_elements) {
  if (!(rate > 0.0) || rate > 64.0) {
    return Status::invalid_argument("fixed rate must be in (0, 64] bits/value");
  }
  const auto bits = static_cast<std::uint64_t>(
      std::llround(rate * static_cast<double>(block_elements)));
  if (bits < 17) {
    return Status::invalid_argument(
        "fixed rate too low: a block needs at least 17 bits");
  }
  return bits;
}

}  // namespace

Expected<compress::CompressResult> ZfpCompressor::compress(
    const data::Field& field, const compress::ErrorBound& bound) const {
  if (bound.mode != compress::BoundMode::kAbsolute &&
      bound.mode != compress::BoundMode::kFixedRate) {
    return Status::unsupported(
        "zfp supports absolute (fixed-accuracy) and fixed-rate bounds only");
  }
  if (bound.value <= 0.0) {
    return Status::invalid_argument("error bound must be positive");
  }
  LCP_RETURN_IF_ERROR(compress::validate_finite(field));

  Timer timer;
  const BlockGrid grid{effective_extents(field.dims())};
  const std::size_t rank = grid.rank();
  const std::size_t block_n = grid.block_elements();

  std::uint64_t block_bits = 0;
  if (bound.mode == compress::BoundMode::kFixedRate) {
    auto bits_per_block = fixed_rate_block_bits(bound.value, block_n);
    if (!bits_per_block) {
      return bits_per_block.status();
    }
    block_bits = *bits_per_block;
  }

  BitWriter writer;
  BlockScratch scratch;
  scratch.samples.resize(block_n);
  for (std::size_t b = 0; b < grid.block_count(); ++b) {
    grid.gather(field.values(), b, scratch.samples);
    if (bound.mode == compress::BoundMode::kFixedRate) {
      encode_block_fixed_rate(scratch.samples, rank, block_bits, scratch,
                              writer);
    } else {
      encode_block(scratch.samples, rank, bound.value, scratch, writer);
    }
  }
  auto bits = writer.finish();

  ByteWriter payload;
  payload.write_u8(kPayloadVersion);
  payload.write_u8(static_cast<std::uint8_t>(kQ));
  payload.write_u8(static_cast<std::uint8_t>(kGuardBits));
  payload.write_u64(bits.size());
  payload.write_bytes(bits);
  const auto payload_bytes = payload.finish();

  compress::CompressResult result;
  result.container = compress::build_container("zfp", bound, field.dims(),
                                               field.name(), payload_bytes);
  result.input_bytes = field.size_bytes();
  result.output_bytes = Bytes{result.container.size()};
  result.native_wall_time = timer.elapsed();
  return result;
}

Expected<compress::DecompressResult> ZfpCompressor::decompress(
    std::span<const std::uint8_t> container) const {
  Timer timer;
  auto view = compress::parse_container(container);
  if (!view) {
    return view.status().with_context("zfp container");
  }
  if (view->codec != "zfp") {
    return Status::invalid_argument("container codec is not zfp");
  }

  ByteReader r{view->payload};
  auto version = r.read_u8();
  if (!version || *version != kPayloadVersion) {
    return Status::unsupported("unknown zfp payload version");
  }
  auto q = r.read_u8();
  auto guard = r.read_u8();
  if (!q || !guard || *q != kQ || *guard != kGuardBits) {
    return Status::unsupported("zfp payload parameters mismatch");
  }
  auto bit_size = r.read_u64();
  if (!bit_size) {
    return bit_size.status().with_context("zfp bit stream size");
  }
  auto bits = r.read_bytes(static_cast<std::size_t>(*bit_size));
  if (!bits) {
    return bits.status().with_context("zfp bit stream");
  }

  const BlockGrid grid{effective_extents(view->dims)};
  const std::size_t rank = grid.rank();
  std::vector<float> out(view->dims.element_count(), 0.0F);

  std::uint64_t block_bits = 0;
  if (view->bound.mode == compress::BoundMode::kFixedRate) {
    auto bits_per_block = fixed_rate_block_bits(view->bound.value,
                                                grid.block_elements());
    if (!bits_per_block) {
      return bits_per_block.status();
    }
    block_bits = *bits_per_block;
  }

  BitReader reader{*bits};
  BlockScratch scratch;
  std::vector<float> block(grid.block_elements());
  for (std::size_t b = 0; b < grid.block_count(); ++b) {
    const bool ok =
        view->bound.mode == compress::BoundMode::kFixedRate
            ? decode_block_fixed_rate(block, rank, block_bits, scratch, reader)
            : decode_block(block, rank, view->bound.value, scratch, reader);
    if (!ok) {
      return Status::corrupt_data("zfp: bit stream truncated or invalid");
    }
    grid.scatter(block, b, out);
  }

  compress::DecompressResult result;
  result.field = data::Field{view->field_name, view->dims, std::move(out)};
  result.native_wall_time = timer.elapsed();
  return result;
}

}  // namespace lcp::zfp
