#include "compress/zfp/block.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace lcp::zfp {

std::vector<std::size_t> effective_extents(const data::Dims& dims) {
  auto ext = dims.extents();
  while (ext.size() > 3) {
    ext[1] *= ext[0];
    ext.erase(ext.begin());
  }
  return ext;
}

BlockGrid::BlockGrid(std::vector<std::size_t> extents) : ext_(std::move(extents)) {
  LCP_REQUIRE(!ext_.empty() && ext_.size() <= 3, "block grid rank must be 1..3");
  blocks_.resize(ext_.size());
  for (std::size_t a = 0; a < ext_.size(); ++a) {
    blocks_[a] = (ext_[a] + 3) / 4;
  }
}

std::size_t BlockGrid::block_count() const noexcept {
  std::size_t n = 1;
  for (std::size_t b : blocks_) {
    n *= b;
  }
  return n;
}

BlockGrid::BlockBox BlockGrid::box(std::size_t b) const {
  LCP_REQUIRE(b < block_count(), "block index out of range");
  BlockBox out;
  // Decompose b in row-major block coordinates (slowest axis first).
  std::size_t rem = b;
  for (std::size_t a = ext_.size(); a-- > 0;) {
    const std::size_t coord = rem % blocks_[a];
    rem /= blocks_[a];
    out.origin[a] = coord * 4;
    out.valid[a] = std::min<std::size_t>(4, ext_[a] - out.origin[a]);
  }
  return out;
}

void BlockGrid::gather(std::span<const float> field, std::size_t b,
                       std::span<float> out) const {
  LCP_REQUIRE(out.size() == block_elements(), "gather output size mismatch");
  const BlockBox bb = box(b);
  const std::size_t r = rank();

  if (r == 1) {
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t ii = bb.origin[0] + std::min(i, bb.valid[0] - 1);
      out[i] = field[ii];
    }
    return;
  }
  if (r == 2) {
    const std::size_t n1 = ext_[1];
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t ii = bb.origin[0] + std::min(i, bb.valid[0] - 1);
      for (std::size_t j = 0; j < 4; ++j) {
        const std::size_t jj = bb.origin[1] + std::min(j, bb.valid[1] - 1);
        out[i * 4 + j] = field[ii * n1 + jj];
      }
    }
    return;
  }
  const std::size_t n1 = ext_[1];
  const std::size_t n2 = ext_[2];
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t ii = bb.origin[0] + std::min(i, bb.valid[0] - 1);
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t jj = bb.origin[1] + std::min(j, bb.valid[1] - 1);
      for (std::size_t k = 0; k < 4; ++k) {
        const std::size_t kk = bb.origin[2] + std::min(k, bb.valid[2] - 1);
        out[(i * 4 + j) * 4 + k] = field[(ii * n1 + jj) * n2 + kk];
      }
    }
  }
}

void BlockGrid::scatter(std::span<const float> in, std::size_t b,
                        std::span<float> field) const {
  LCP_REQUIRE(in.size() == block_elements(), "scatter input size mismatch");
  const BlockBox bb = box(b);
  const std::size_t r = rank();

  if (r == 1) {
    for (std::size_t i = 0; i < bb.valid[0]; ++i) {
      field[bb.origin[0] + i] = in[i];
    }
    return;
  }
  if (r == 2) {
    const std::size_t n1 = ext_[1];
    for (std::size_t i = 0; i < bb.valid[0]; ++i) {
      for (std::size_t j = 0; j < bb.valid[1]; ++j) {
        field[(bb.origin[0] + i) * n1 + bb.origin[1] + j] = in[i * 4 + j];
      }
    }
    return;
  }
  const std::size_t n1 = ext_[1];
  const std::size_t n2 = ext_[2];
  for (std::size_t i = 0; i < bb.valid[0]; ++i) {
    for (std::size_t j = 0; j < bb.valid[1]; ++j) {
      for (std::size_t k = 0; k < bb.valid[2]; ++k) {
        field[((bb.origin[0] + i) * n1 + bb.origin[1] + j) * n2 + bb.origin[2] +
              k] = in[(i * 4 + j) * 4 + k];
      }
    }
  }
}

}  // namespace lcp::zfp
