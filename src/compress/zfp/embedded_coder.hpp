#pragma once
// Embedded bit-plane coder for one block of negabinary coefficients.
//
// Planes are emitted most-significant first. Within a plane, bits of
// already-significant coefficients are sent verbatim; new significant
// coefficients are located with a (flag, unary-offset) walk over the
// ordered suffix, exploiting the low-frequency-first coefficient order.
// Truncating the stream after any plane yields a valid coarser block —
// the "embedded coding" the ZFP paper describes.

#include <cstdint>
#include <span>

#include "support/bitstream.hpp"

namespace lcp::zfp {

/// Encodes planes [plane_lo, plane_hi] (inclusive, hi >= lo) of `coeffs`
/// into `writer`. Coefficients must already be in visit order.
void encode_block_planes(std::span<const std::uint64_t> coeffs,
                         unsigned plane_hi, unsigned plane_lo,
                         BitWriter& writer);

/// Decodes planes written by encode_block_planes into `coeffs` (zeroed by
/// the caller). Returns false if the stream ended prematurely.
[[nodiscard]] bool decode_block_planes(std::span<std::uint64_t> coeffs,
                                       unsigned plane_hi, unsigned plane_lo,
                                       BitReader& reader);

/// Fixed-rate variants: encode/decode planes [0, plane_hi] but consume
/// exactly `budget_bits` (the encoder zero-pads, the decoder skips the
/// padding), stopping symmetrically when the budget runs out — possibly in
/// the middle of a plane. Truncating at any budget yields a valid coarser
/// block (the "embedded" property that makes ZFP's fixed-rate mode work).
void encode_block_planes_capped(std::span<const std::uint64_t> coeffs,
                                unsigned plane_hi, std::uint64_t budget_bits,
                                BitWriter& writer);

[[nodiscard]] bool decode_block_planes_capped(std::span<std::uint64_t> coeffs,
                                              unsigned plane_hi,
                                              std::uint64_t budget_bits,
                                              BitReader& reader);

}  // namespace lcp::zfp
