#include "compress/zfp/embedded_coder.hpp"

#include "support/status.hpp"

namespace lcp::zfp {

void encode_block_planes(std::span<const std::uint64_t> coeffs,
                         unsigned plane_hi, unsigned plane_lo,
                         BitWriter& writer) {
  LCP_REQUIRE(plane_hi < 64 && plane_lo <= plane_hi, "invalid plane range");
  const std::size_t n = coeffs.size();
  std::size_t sig = 0;  // coefficients [0, sig) are already significant

  for (unsigned plane = plane_hi + 1; plane-- > plane_lo;) {
    // Verbatim bits for the significant prefix.
    for (std::size_t i = 0; i < sig; ++i) {
      writer.write_bit(((coeffs[i] >> plane) & 1) != 0);
    }
    // Grow the significant prefix: locate each new coefficient whose first
    // one-bit is in this plane.
    std::size_t scan = sig;
    while (scan < n) {
      std::size_t j = scan;
      while (j < n && ((coeffs[j] >> plane) & 1) == 0) {
        ++j;
      }
      if (j == n) {
        writer.write_bit(false);  // no more significance in this plane
        break;
      }
      writer.write_bit(true);
      writer.write_unary(static_cast<unsigned>(j - scan));
      sig = j + 1;
      scan = sig;
    }
  }
}

bool decode_block_planes(std::span<std::uint64_t> coeffs, unsigned plane_hi,
                         unsigned plane_lo, BitReader& reader) {
  LCP_REQUIRE(plane_hi < 64 && plane_lo <= plane_hi, "invalid plane range");
  const std::size_t n = coeffs.size();
  std::size_t sig = 0;

  for (unsigned plane = plane_hi + 1; plane-- > plane_lo;) {
    for (std::size_t i = 0; i < sig; ++i) {
      if (reader.read_bit()) {
        coeffs[i] |= std::uint64_t{1} << plane;
      }
    }
    std::size_t scan = sig;
    while (scan < n) {
      if (!reader.read_bit()) {
        break;  // plane has no further significance
      }
      const unsigned offset = reader.read_unary();
      const std::size_t j = scan + offset;
      if (j >= n) {
        return false;  // corrupt stream
      }
      coeffs[j] |= std::uint64_t{1} << plane;
      sig = j + 1;
      scan = sig;
    }
    if (reader.overflowed()) {
      return false;
    }
  }
  return true;
}

void encode_block_planes_capped(std::span<const std::uint64_t> coeffs,
                                unsigned plane_hi, std::uint64_t budget_bits,
                                BitWriter& writer) {
  LCP_REQUIRE(plane_hi < 64, "invalid plane");
  const std::size_t n = coeffs.size();
  const std::uint64_t start = writer.bit_count();
  std::uint64_t used = 0;
  auto remaining = [&] { return budget_bits - used; };
  auto put = [&](bool bit) {
    writer.write_bit(bit);
    ++used;
  };

  std::size_t sig = 0;
  for (unsigned plane = plane_hi + 1; plane-- > 0 && remaining() > 0;) {
    for (std::size_t i = 0; i < sig && remaining() > 0; ++i) {
      put(((coeffs[i] >> plane) & 1) != 0);
    }
    std::size_t scan = sig;
    while (scan < n && remaining() > 0) {
      std::size_t j = scan;
      while (j < n && ((coeffs[j] >> plane) & 1) == 0) {
        ++j;
      }
      if (j == n) {
        put(false);
        break;
      }
      // The (flag, unary) token costs 1 + (j - scan) + 1 bits. If it does
      // not fit, emit zeros to exhaust the budget — the decoder reads the
      // same zeros and likewise never completes the token.
      const std::uint64_t token = 2 + (j - scan);
      if (token > remaining()) {
        while (remaining() > 0) {
          put(false);
        }
        break;
      }
      put(true);
      for (std::size_t z = scan; z < j; ++z) {
        put(false);
      }
      put(true);
      sig = j + 1;
      scan = sig;
    }
  }
  // Zero-pad to exactly the budget so every block occupies the same size.
  while (writer.bit_count() - start < budget_bits) {
    writer.write_bit(false);
  }
}

bool decode_block_planes_capped(std::span<std::uint64_t> coeffs,
                                unsigned plane_hi, std::uint64_t budget_bits,
                                BitReader& reader) {
  LCP_REQUIRE(plane_hi < 64, "invalid plane");
  const std::size_t n = coeffs.size();
  const std::uint64_t start = reader.bit_position();
  std::uint64_t used = 0;
  auto remaining = [&] { return budget_bits - used; };
  auto take = [&]() {
    ++used;
    return reader.read_bit();
  };

  std::size_t sig = 0;
  for (unsigned plane = plane_hi + 1; plane-- > 0 && remaining() > 0;) {
    for (std::size_t i = 0; i < sig && remaining() > 0; ++i) {
      if (take()) {
        coeffs[i] |= std::uint64_t{1} << plane;
      }
    }
    std::size_t scan = sig;
    while (scan < n && remaining() > 0) {
      if (!take()) {
        // Either "no more significance" or the start of budget padding —
        // indistinguishable by design; both mean "stop this plane" unless
        // we are mid-token, which the encoder never leaves us in.
        break;
      }
      // Read the unary offset, bounded by both the budget and the block.
      std::size_t j = scan;
      bool terminated = false;
      while (remaining() > 0) {
        if (take()) {
          terminated = true;
          break;
        }
        ++j;
        if (j >= n) {
          return false;  // corrupt: offset past the block
        }
      }
      if (!terminated) {
        break;  // budget exhausted mid-token (encoder padded): stop
      }
      coeffs[j] |= std::uint64_t{1} << plane;
      sig = j + 1;
      scan = sig;
    }
    if (reader.overflowed()) {
      return false;
    }
  }
  // Skip padding up to the block boundary.
  while (reader.bit_position() - start < budget_bits) {
    (void)reader.read_bit();
  }
  return !reader.overflowed();
}

}  // namespace lcp::zfp
