#include "compress/zfp/embedded_coder.hpp"

#include <algorithm>
#include <bit>

#include "compress/simd/dispatch.hpp"
#include "support/status.hpp"

#if defined(LCP_HAVE_AVX2_BUILD)
#include "compress/simd/avx2_kernels.hpp"
#endif

namespace lcp::zfp {
namespace {

/// Bit `plane` of each coefficient in [begin, begin+count), packed LSB-first
/// into one word. count <= 64.
std::uint64_t gather_plane(std::span<const std::uint64_t> coeffs,
                           unsigned plane, std::size_t begin,
                           std::size_t count) {
#if defined(LCP_HAVE_AVX2_BUILD)
  if (simd::simd_level() >= simd::SimdLevel::kAvx2) {
    return simd::avx2::gather_plane(coeffs.data() + begin, plane, count);
  }
#endif
  std::uint64_t word = 0;
  for (std::size_t t = 0; t < count; ++t) {
    word |= ((coeffs[begin + t] >> plane) & 1u) << t;
  }
  return word;
}

/// Writes `count` zero bits in word-sized batches.
void write_zeros(BitWriter& writer, std::uint64_t count) {
  while (count >= 64) {
    writer.write_bits(0, 64);
    count -= 64;
  }
  if (count > 0) {
    writer.write_bits(0, static_cast<unsigned>(count));
  }
}

/// Skips `count` bits in word-sized batches (still flags overflow).
void skip_bits(BitReader& reader, std::uint64_t count) {
  while (count >= 64) {
    (void)reader.read_bits(64);
    count -= 64;
  }
  if (count > 0) {
    (void)reader.read_bits(static_cast<unsigned>(count));
  }
}

}  // namespace

void encode_block_planes(std::span<const std::uint64_t> coeffs,
                         unsigned plane_hi, unsigned plane_lo,
                         BitWriter& writer) {
  LCP_REQUIRE(plane_hi < 64 && plane_lo <= plane_hi, "invalid plane range");
  const std::size_t n = coeffs.size();
  std::size_t sig = 0;  // coefficients [0, sig) are already significant

  for (unsigned plane = plane_hi + 1; plane-- > plane_lo;) {
    // Verbatim bits for the significant prefix, one word-batched write per
    // 64 coefficients (ZFP blocks hold at most 4^3 = 64, so usually one).
    for (std::size_t i = 0; i < sig;) {
      const auto chunk =
          static_cast<unsigned>(std::min<std::size_t>(64, sig - i));
      writer.write_bits(gather_plane(coeffs, plane, i, chunk), chunk);
      i += chunk;
    }
    // Grow the significant prefix: locate each new coefficient whose first
    // one-bit is in this plane with a packed-word scan.
    std::size_t scan = sig;
    while (scan < n) {
      std::size_t j = n;
      for (std::size_t base = scan; base < n; base += 64) {
        const std::size_t chunk = std::min<std::size_t>(64, n - base);
        const std::uint64_t word = gather_plane(coeffs, plane, base, chunk);
        if (word != 0) {
          j = base + static_cast<unsigned>(std::countr_zero(word));
          break;
        }
      }
      if (j == n) {
        writer.write_bit(false);  // no more significance in this plane
        break;
      }
      writer.write_bit(true);
      writer.write_unary(static_cast<unsigned>(j - scan));
      sig = j + 1;
      scan = sig;
    }
  }
}

bool decode_block_planes(std::span<std::uint64_t> coeffs, unsigned plane_hi,
                         unsigned plane_lo, BitReader& reader) {
  LCP_REQUIRE(plane_hi < 64 && plane_lo <= plane_hi, "invalid plane range");
  const std::size_t n = coeffs.size();
  std::size_t sig = 0;

  for (unsigned plane = plane_hi + 1; plane-- > plane_lo;) {
    for (std::size_t i = 0; i < sig;) {
      const auto chunk =
          static_cast<unsigned>(std::min<std::size_t>(64, sig - i));
      std::uint64_t word = reader.read_bits(chunk);
      while (word != 0) {
        const auto t = static_cast<unsigned>(std::countr_zero(word));
        coeffs[i + t] |= std::uint64_t{1} << plane;
        word &= word - 1;
      }
      i += chunk;
    }
    std::size_t scan = sig;
    while (scan < n) {
      if (!reader.read_bit()) {
        break;  // plane has no further significance
      }
      const unsigned offset = reader.read_unary();
      const std::size_t j = scan + offset;
      if (j >= n) {
        return false;  // corrupt stream
      }
      coeffs[j] |= std::uint64_t{1} << plane;
      sig = j + 1;
      scan = sig;
    }
    if (reader.overflowed()) {
      return false;
    }
  }
  return true;
}

void encode_block_planes_capped(std::span<const std::uint64_t> coeffs,
                                unsigned plane_hi, std::uint64_t budget_bits,
                                BitWriter& writer) {
  LCP_REQUIRE(plane_hi < 64, "invalid plane");
  const std::size_t n = coeffs.size();
  const std::uint64_t start = writer.bit_count();
  std::uint64_t used = 0;
  auto remaining = [&] { return budget_bits - used; };
  auto put_word = [&](std::uint64_t word, unsigned bits) {
    writer.write_bits(word, bits);
    used += bits;
  };

  std::size_t sig = 0;
  for (unsigned plane = plane_hi + 1; plane-- > 0 && remaining() > 0;) {
    for (std::size_t i = 0; i < sig && remaining() > 0;) {
      const auto chunk = static_cast<unsigned>(std::min<std::uint64_t>(
          {64, static_cast<std::uint64_t>(sig - i), remaining()}));
      put_word(gather_plane(coeffs, plane, i, chunk), chunk);
      i += chunk;
    }
    std::size_t scan = sig;
    while (scan < n && remaining() > 0) {
      std::size_t j = n;
      for (std::size_t base = scan; base < n; base += 64) {
        const std::size_t chunk = std::min<std::size_t>(64, n - base);
        const std::uint64_t word = gather_plane(coeffs, plane, base, chunk);
        if (word != 0) {
          j = base + static_cast<unsigned>(std::countr_zero(word));
          break;
        }
      }
      if (j == n) {
        put_word(0, 1);
        break;
      }
      // The (flag, unary) token costs 1 + (j - scan) + 1 bits. If it does
      // not fit, emit zeros to exhaust the budget — the decoder reads the
      // same zeros and likewise never completes the token.
      const std::uint64_t token = 2 + (j - scan);
      if (token > remaining()) {
        const std::uint64_t pad = remaining();
        write_zeros(writer, pad);
        used += pad;
        break;
      }
      put_word(1, 1);
      const auto run = static_cast<std::uint64_t>(j - scan);
      write_zeros(writer, run);
      used += run;
      put_word(1, 1);
      sig = j + 1;
      scan = sig;
    }
  }
  // Zero-pad to exactly the budget so every block occupies the same size.
  write_zeros(writer, budget_bits - (writer.bit_count() - start));
}

bool decode_block_planes_capped(std::span<std::uint64_t> coeffs,
                                unsigned plane_hi, std::uint64_t budget_bits,
                                BitReader& reader) {
  LCP_REQUIRE(plane_hi < 64, "invalid plane");
  const std::size_t n = coeffs.size();
  const std::uint64_t start = reader.bit_position();
  std::uint64_t used = 0;
  auto remaining = [&] { return budget_bits - used; };
  auto take = [&]() {
    ++used;
    return reader.read_bit();
  };

  std::size_t sig = 0;
  for (unsigned plane = plane_hi + 1; plane-- > 0 && remaining() > 0;) {
    for (std::size_t i = 0; i < sig && remaining() > 0;) {
      const auto chunk = static_cast<unsigned>(std::min<std::uint64_t>(
          {64, static_cast<std::uint64_t>(sig - i), remaining()}));
      std::uint64_t word = reader.read_bits(chunk);
      used += chunk;
      while (word != 0) {
        const auto t = static_cast<unsigned>(std::countr_zero(word));
        coeffs[i + t] |= std::uint64_t{1} << plane;
        word &= word - 1;
      }
      i += chunk;
    }
    std::size_t scan = sig;
    while (scan < n && remaining() > 0) {
      if (!take()) {
        // Either "no more significance" or the start of budget padding —
        // indistinguishable by design; both mean "stop this plane" unless
        // we are mid-token, which the encoder never leaves us in.
        break;
      }
      // Read the unary offset, bounded by both the budget and the block.
      std::size_t j = scan;
      bool terminated = false;
      while (remaining() > 0) {
        if (take()) {
          terminated = true;
          break;
        }
        ++j;
        if (j >= n) {
          return false;  // corrupt: offset past the block
        }
      }
      if (!terminated) {
        break;  // budget exhausted mid-token (encoder padded): stop
      }
      coeffs[j] |= std::uint64_t{1} << plane;
      sig = j + 1;
      scan = sig;
    }
    if (reader.overflowed()) {
      return false;
    }
  }
  // Skip padding up to the block boundary.
  skip_bits(reader, budget_bits - (reader.bit_position() - start));
  return !reader.overflowed();
}

}  // namespace lcp::zfp
