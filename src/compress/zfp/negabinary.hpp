#pragma once
// Negabinary (base -2) recoding of transform coefficients. Unlike
// two's-complement, small-magnitude values of either sign have all high
// bits zero, which is what lets the embedded bit-plane coder truncate
// uniformly from the top.

#include <cstdint>

namespace lcp::zfp {

inline constexpr std::uint64_t kNegabinaryMask = 0xaaaaaaaaaaaaaaaaULL;

/// int64 -> negabinary bit pattern.
[[nodiscard]] constexpr std::uint64_t to_negabinary(std::int64_t x) noexcept {
  return (static_cast<std::uint64_t>(x) + kNegabinaryMask) ^ kNegabinaryMask;
}

/// Inverse of to_negabinary.
[[nodiscard]] constexpr std::int64_t from_negabinary(std::uint64_t nb) noexcept {
  return static_cast<std::int64_t>((nb ^ kNegabinaryMask) - kNegabinaryMask);
}

/// Magnitude of the value change caused by zeroing bits [0, plane) of a
/// negabinary pattern is at most sum_{p<plane} 2^p < 2^plane... in base -2
/// the dropped digits encode a value in (-2^plane*2/3, 2^plane*1/3*2], so
/// |delta| < 2^(plane+1) is a safe bound used for the accuracy analysis.
[[nodiscard]] constexpr std::int64_t truncation_error_bound(
    unsigned plane) noexcept {
  return plane >= 62 ? INT64_MAX : (std::int64_t{1} << (plane + 1));
}

}  // namespace lcp::zfp
