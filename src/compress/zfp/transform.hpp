#pragma once
// Integer decorrelating transform for 4^d blocks: a two-level S-transform
// (integer Haar lifting) applied along each axis. Exactly invertible on
// int64 coefficients, so all loss comes from fixed-point conversion and
// bit-plane truncation — which is what makes the accuracy guarantee
// analyzable (see zfp_compressor.cpp).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lcp::zfp {

/// Forward lift of one 4-sample line at stride `s` starting at `p`.
void forward_lift4(std::int64_t* p, std::size_t s) noexcept;

/// Exact inverse of forward_lift4.
void inverse_lift4(std::int64_t* p, std::size_t s) noexcept;

/// Forward transform of a 4^rank block (rank 1..3), all axes.
void forward_transform(std::span<std::int64_t> block, std::size_t rank) noexcept;

/// Inverse transform of a 4^rank block.
void inverse_transform(std::span<std::int64_t> block, std::size_t rank) noexcept;

/// Coefficient visit order for embedded coding: low-frequency (smooth)
/// coefficients first, so significance tends to concentrate in the prefix.
/// Returns a permutation of [0, 4^rank).
[[nodiscard]] const std::vector<std::uint16_t>& coefficient_order(
    std::size_t rank);

}  // namespace lcp::zfp
