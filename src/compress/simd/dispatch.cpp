#include "compress/simd/dispatch.hpp"

#include <algorithm>
#include <atomic>

#include "support/cpu_features.hpp"

namespace lcp::simd {
namespace {

/// -1 = no override; otherwise the raw SimdLevel value requested.
std::atomic<int> g_override{-1};

SimdLevel resolve_hardware() noexcept {
#if defined(LCP_HAVE_AVX2_BUILD)
  if (cpu_supports_avx2() && !force_scalar_requested()) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel hardware_simd_level() noexcept {
  static const SimdLevel cached = resolve_hardware();
  return cached;
}

SimdLevel simd_level() noexcept {
  const SimdLevel hw = hardware_simd_level();
  const int request = g_override.load(std::memory_order_relaxed);
  if (request < 0) {
    return hw;
  }
  return std::min(static_cast<SimdLevel>(request), hw);
}

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level) noexcept
    : previous_(g_override.exchange(static_cast<int>(level),
                                    std::memory_order_relaxed)) {}

ScopedSimdLevel::~ScopedSimdLevel() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace lcp::simd
