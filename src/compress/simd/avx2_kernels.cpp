// AVX2 kernel bodies. This TU is the only one compiled with -mavx2 (and
// deliberately without -mfma: contracting the double multiply/convert
// chains would break bit-identity with the scalar twins). It is only added
// to the build on x86-64 when the compiler accepts -mavx2, and only
// executed when simd::simd_level() resolved to kAvx2.
//
// Identity contract (see compress/sz/prequant.hpp): every float-touching
// step here — round_pd TO_NEAREST, maxpd/minpd clamp order, cvtepi32_pd *
// step_pd -> cvtpd_ps — has the same operation order and rounding as the
// scalar helpers, assuming the default round-to-nearest-even FP
// environment. Integer stencils are exact in both paths by construction.

#include "compress/simd/avx2_kernels.hpp"

#include <immintrin.h>

#include <cstring>

namespace lcp::simd::avx2 {
namespace {

/// Load 8 consecutive int32 grid values.
inline __m256i load_i32(const std::int32_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store_i32(std::int32_t* p, __m256i v) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// decoded = float((double)r * step) for 8 lanes, one rounding at the
/// final cvtpd_ps — identical to sz::dequantize per lane.
inline void store_dequantized(float* out, __m256i r, __m256d step) noexcept {
  const __m256d lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(r));
  const __m256d hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(r, 1));
  _mm_storeu_ps(out, _mm256_cvtpd_ps(_mm256_mul_pd(lo, step)));
  _mm_storeu_ps(out + 4, _mm256_cvtpd_ps(_mm256_mul_pd(hi, step)));
}

}  // namespace

void prequantize(const float* values, std::size_t n, double inv_step,
                 std::int32_t* grid) noexcept {
  const __m256d inv = _mm256_set1_pd(inv_step);
  const __m256d lo = _mm256_set1_pd(-static_cast<double>(sz::kPrequantMax));
  const __m256d hi = _mm256_set1_pd(static_cast<double>(sz::kPrequantMax));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d d0 = _mm256_cvtps_pd(_mm_loadu_ps(values + i));
    __m256d d1 = _mm256_cvtps_pd(_mm_loadu_ps(values + i + 4));
    d0 = _mm256_round_pd(_mm256_mul_pd(d0, inv),
                         _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    d1 = _mm256_round_pd(_mm256_mul_pd(d1, inv),
                         _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    // max first (NaN lands on lo), then min — the order prequantize mirrors.
    d0 = _mm256_min_pd(_mm256_max_pd(d0, lo), hi);
    d1 = _mm256_min_pd(_mm256_max_pd(d1, lo), hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(grid + i),
                     _mm256_cvtpd_epi32(d0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(grid + i + 4),
                     _mm256_cvtpd_epi32(d1));
  }
  for (; i < n; ++i) {
    grid[i] = sz::prequantize(values[i], inv_step);
  }
}

void predict_row_l1_1d(const std::int32_t* site, std::size_t k0,
                       std::size_t n, std::int32_t* pred) noexcept {
  std::size_t k = k0;
  for (; k + 8 <= n; k += 8) {
    store_i32(pred + k, load_i32(site + k - 1));
  }
  for (; k < n; ++k) {
    pred[k] = site[k - 1];
  }
}

void predict_row_l2_1d(const std::int32_t* site, std::size_t k0,
                       std::size_t n, std::int32_t* pred) noexcept {
  std::size_t k = k0;
  for (; k + 8 <= n; k += 8) {
    const __m256i prev = load_i32(site + k - 1);
    const __m256i prev2 = load_i32(site + k - 2);
    store_i32(pred + k, _mm256_sub_epi32(_mm256_add_epi32(prev, prev), prev2));
  }
  for (; k < n; ++k) {
    pred[k] = 2 * site[k - 1] - site[k - 2];
  }
}

void predict_row_l1_2d(const std::int32_t* site, std::size_t n1,
                       std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept {
  const std::int32_t* up = site - n1;
  std::size_t k = k0;
  for (; k + 8 <= n; k += 8) {
    const __m256i sum = _mm256_add_epi32(load_i32(up + k), load_i32(site + k - 1));
    store_i32(pred + k, _mm256_sub_epi32(sum, load_i32(up + k - 1)));
  }
  for (; k < n; ++k) {
    pred[k] = up[k] + site[k - 1] - up[k - 1];
  }
}

void predict_row_l2_2d(const std::int32_t* site, std::size_t n1,
                       std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept {
  const std::int32_t* u1 = site - n1;
  const std::int32_t* u2 = site - 2 * n1;
  std::size_t k = k0;
  for (; k + 8 <= n; k += 8) {
    const __m256i two = _mm256_set1_epi32(2);
    const __m256i four = _mm256_set1_epi32(4);
    __m256i acc = _mm256_mullo_epi32(two, load_i32(u1 + k));
    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(two, load_i32(site + k - 1)));
    acc = _mm256_sub_epi32(acc, load_i32(u2 + k));
    acc = _mm256_sub_epi32(acc, load_i32(site + k - 2));
    acc = _mm256_sub_epi32(acc, _mm256_mullo_epi32(four, load_i32(u1 + k - 1)));
    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(two, load_i32(u2 + k - 1)));
    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(two, load_i32(u1 + k - 2)));
    acc = _mm256_sub_epi32(acc, load_i32(u2 + k - 2));
    store_i32(pred + k, acc);
  }
  for (; k < n; ++k) {
    pred[k] = 2 * u1[k] + 2 * site[k - 1] - u2[k] - site[k - 2] -
              4 * u1[k - 1] + 2 * u2[k - 1] + 2 * u1[k - 2] - u2[k - 2];
  }
}

void predict_row_l1_3d(const std::int32_t* site, std::size_t plane,
                       std::size_t n2, std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept {
  const std::int32_t* a = site - plane;
  const std::int32_t* b = site - n2;
  const std::int32_t* ab = site - plane - n2;
  std::size_t k = k0;
  for (; k + 8 <= n; k += 8) {
    __m256i acc = _mm256_add_epi32(load_i32(a + k), load_i32(b + k));
    acc = _mm256_add_epi32(acc, load_i32(site + k - 1));
    acc = _mm256_sub_epi32(acc, load_i32(ab + k));
    acc = _mm256_sub_epi32(acc, load_i32(a + k - 1));
    acc = _mm256_sub_epi32(acc, load_i32(b + k - 1));
    acc = _mm256_add_epi32(acc, load_i32(ab + k - 1));
    store_i32(pred + k, acc);
  }
  for (; k < n; ++k) {
    pred[k] = a[k] + b[k] + site[k - 1] - ab[k] - a[k - 1] - b[k - 1] +
              ab[k - 1];
  }
}

void predict_row_l2_3d(const std::int32_t* site, std::size_t plane,
                       std::size_t n2, std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept {
  std::size_t k = k0;
  for (; k + 8 <= n; k += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (const auto& tap : sz::kLorenzo2Taps3d) {
      const std::size_t off =
          static_cast<std::size_t>(tap.offset_i) * plane +
          static_cast<std::size_t>(tap.offset_j) * n2 +
          static_cast<std::size_t>(tap.offset_k);
      acc = _mm256_add_epi32(
          acc, _mm256_mullo_epi32(_mm256_set1_epi32(tap.weight),
                                  load_i32(site + k - off)));
    }
    store_i32(pred + k, acc);
  }
  for (; k < n; ++k) {
    std::int32_t acc = 0;
    for (const auto& tap : sz::kLorenzo2Taps3d) {
      const std::size_t off =
          static_cast<std::size_t>(tap.offset_i) * plane +
          static_cast<std::size_t>(tap.offset_j) * n2 +
          static_cast<std::size_t>(tap.offset_k);
      acc += tap.weight * site[k - off];
    }
    pred[k] = acc;
  }
}

void encode_finish(const float* values, const std::int32_t* grid,
                   const std::int32_t* pred, std::size_t n,
                   const sz::PrequantParams& p, std::uint32_t* codes,
                   float* decoded, std::vector<std::uint32_t>& exact) {
  const std::int32_t radius = static_cast<std::int32_t>(p.radius);
  const __m256i radius_v = _mm256_set1_epi32(radius);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i max_code = _mm256_set1_epi32(2 * radius - 1);
  const __m256d step = _mm256_set1_pd(p.step);
  const __m256d eb = _mm256_set1_pd(p.eb);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i r = load_i32(grid + i);
    const __m256i code =
        _mm256_add_epi32(_mm256_sub_epi32(r, load_i32(pred + i)), radius_v);
    const __m256i bad_code = _mm256_or_si256(
        _mm256_cmpgt_epi32(one, code), _mm256_cmpgt_epi32(code, max_code));
    const __m256d rd0 = _mm256_cvtepi32_pd(_mm256_castsi256_si128(r));
    const __m256d rd1 = _mm256_cvtepi32_pd(_mm256_extracti128_si256(r, 1));
    const __m128 rec0 = _mm256_cvtpd_ps(_mm256_mul_pd(rd0, step));
    const __m128 rec1 = _mm256_cvtpd_ps(_mm256_mul_pd(rd1, step));
    const __m256d v0 = _mm256_cvtps_pd(_mm_loadu_ps(values + i));
    const __m256d v1 = _mm256_cvtps_pd(_mm_loadu_ps(values + i + 4));
    const __m256d err0 =
        _mm256_and_pd(_mm256_sub_pd(_mm256_cvtps_pd(rec0), v0), abs_mask);
    const __m256d err1 =
        _mm256_and_pd(_mm256_sub_pd(_mm256_cvtps_pd(rec1), v1), abs_mask);
    // LE_OQ: NaN compares false, so NaN inputs fall to the exact path just
    // like the scalar fabs(...) <= eb test.
    const int ok = _mm256_movemask_pd(_mm256_cmp_pd(err0, eb, _CMP_LE_OQ)) |
                   (_mm256_movemask_pd(_mm256_cmp_pd(err1, eb, _CMP_LE_OQ))
                    << 4);
    const int bad = _mm256_movemask_ps(_mm256_castsi256_ps(bad_code)) |
                    (~ok & 0xFF);
    if (bad == 0) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + i), code);
      _mm_storeu_ps(decoded + i, rec0);
      _mm_storeu_ps(decoded + i + 4, rec1);
    } else {
      // Replay the whole group through the shared scalar helper so exact
      // values append in stream order; admitted lanes recompute to the
      // same code/decoded the vector path produced.
      for (std::size_t lane = 0; lane < 8; ++lane) {
        const std::size_t idx = i + lane;
        sz::encode_site(values[idx], grid[idx], pred[idx], p, codes[idx],
                        decoded[idx], exact);
      }
    }
  }
  for (; i < n; ++i) {
    sz::encode_site(values[i], grid[i], pred[i], p, codes[i], decoded[i],
                    exact);
  }
}

std::size_t decode_row_l1(const std::uint32_t* codes, const std::int32_t* a,
                          const std::int32_t* b, const std::int32_t* ab,
                          std::size_t k0, std::size_t n, std::int32_t radius,
                          double step, std::int32_t* row,
                          float* decoded) noexcept {
  std::size_t k = k0;
  if (k + 8 > n) {
    return k;
  }
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i max_code = _mm256_set1_epi32(2 * radius - 1);
  const __m256i radius_v = _mm256_set1_epi32(radius);
  const __m256i grid_max = _mm256_set1_epi32(sz::kPrequantMax);
  const __m256d step_v = _mm256_set1_pd(step);
  // Running u[k-1]: u[k] = r[k] - C[k], recoverable from already-decoded
  // rows, so resuming after a scalar bail needs no carried state.
  std::int32_t carry = 0;
  if (k > 0) {
    carry = row[k - 1];
    if (a != nullptr) {
      carry -= a[k - 1];
    }
    if (b != nullptr) {
      carry -= b[k - 1];
    }
    if (ab != nullptr) {
      carry += ab[k - 1];
    }
  }
  while (k + 8 <= n) {
    const __m256i code =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + k));
    // Exact sites (0), codes past the alphabet, and hostile values >= 2^31
    // (negative as int32) all flag invalid.
    __m256i invalid = _mm256_or_si256(_mm256_cmpgt_epi32(one, code),
                                      _mm256_cmpgt_epi32(code, max_code));
    // 8-lane inclusive prefix sum of delta = code - radius.
    __m256i u = _mm256_sub_epi32(code, radius_v);
    u = _mm256_add_epi32(u, _mm256_slli_si256(u, 4));
    u = _mm256_add_epi32(u, _mm256_slli_si256(u, 8));
    const __m256i lane3 = _mm256_shuffle_epi32(u, 0xFF);
    u = _mm256_add_epi32(u, _mm256_permute2x128_si256(lane3, lane3, 0x08));
    u = _mm256_add_epi32(u, _mm256_set1_epi32(carry));
    __m256i c = _mm256_setzero_si256();
    if (a != nullptr) {
      c = _mm256_add_epi32(c, load_i32(a + k));
    }
    if (b != nullptr) {
      c = _mm256_add_epi32(c, load_i32(b + k));
    }
    if (ab != nullptr) {
      c = _mm256_sub_epi32(c, load_i32(ab + k));
    }
    const __m256i r = _mm256_add_epi32(u, c);
    invalid = _mm256_or_si256(
        invalid, _mm256_cmpgt_epi32(_mm256_abs_epi32(r), grid_max));
    if (_mm256_movemask_epi8(invalid) != 0) {
      // Whole-group bail: with any lane invalid the lane sums may have
      // wrapped, so nothing from this group is kept. When all codes are
      // valid, |delta| < 2^21 and |carry-adjusted sums| < 2^27 — no wrap.
      return k;
    }
    store_i32(row + k, r);
    store_dequantized(decoded + k, r, step_v);
    carry = _mm256_extract_epi32(u, 7);
    k += 8;
  }
  return k;
}

void shuffle_bytes(const float* values, std::size_t n,
                   std::uint8_t* out) noexcept {
  const __m256i transpose = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,  //
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const __m256i planes = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    // Per 128-bit lane: group same-significance bytes of 4 floats...
    const __m256i grouped = _mm256_shuffle_epi8(raw, transpose);
    // ...then pair lane halves so each qword is one full 8-float plane.
    const __m256i t = _mm256_permutevar8x32_epi32(grouped, planes);
    const __m128i lo = _mm256_castsi256_si128(t);
    const __m128i hi = _mm256_extracti128_si256(t, 1);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), lo);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + n + i),
                     _mm_unpackhi_epi64(lo, lo));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + 2 * n + i), hi);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + 3 * n + i),
                     _mm_unpackhi_epi64(hi, hi));
  }
  for (; i < n; ++i) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, values + i, sizeof(bits));
    out[i] = static_cast<std::uint8_t>(bits & 0xFFU);
    out[n + i] = static_cast<std::uint8_t>((bits >> 8U) & 0xFFU);
    out[2 * n + i] = static_cast<std::uint8_t>((bits >> 16U) & 0xFFU);
    out[3 * n + i] = static_cast<std::uint8_t>((bits >> 24U) & 0xFFU);
  }
}

void unshuffle_bytes(const std::uint8_t* bytes, std::size_t n,
                     float* out) noexcept {
  const __m256i transpose = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,  //
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const __m256i halves = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t p0 = 0;
    std::uint64_t p1 = 0;
    std::uint64_t p2 = 0;
    std::uint64_t p3 = 0;
    std::memcpy(&p0, bytes + i, sizeof(p0));
    std::memcpy(&p1, bytes + n + i, sizeof(p1));
    std::memcpy(&p2, bytes + 2 * n + i, sizeof(p2));
    std::memcpy(&p3, bytes + 3 * n + i, sizeof(p3));
    const __m256i t = _mm256_set_epi64x(
        static_cast<long long>(p3), static_cast<long long>(p2),
        static_cast<long long>(p1), static_cast<long long>(p0));
    const __m256i grouped = _mm256_permutevar8x32_epi32(t, halves);
    const __m256i raw = _mm256_shuffle_epi8(grouped, transpose);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), raw);
  }
  for (; i < n; ++i) {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(bytes[i]) |
        (static_cast<std::uint32_t>(bytes[n + i]) << 8U) |
        (static_cast<std::uint32_t>(bytes[2 * n + i]) << 16U) |
        (static_cast<std::uint32_t>(bytes[3 * n + i]) << 24U);
    std::memcpy(out + i, &bits, sizeof(bits));
  }
}

std::uint64_t gather_plane(const std::uint64_t* coeffs, unsigned plane,
                           std::size_t count) noexcept {
  std::uint64_t word = 0;
  const int shift = 63 - static_cast<int>(plane);
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(coeffs + t));
    // Move bit `plane` to the sign position and harvest 4 signs at once.
    const __m256i s = _mm256_slli_epi64(v, shift);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(s)));
    word |= static_cast<std::uint64_t>(mask) << t;
  }
  for (; t < count; ++t) {
    word |= ((coeffs[t] >> plane) & 1U) << t;
  }
  return word;
}

}  // namespace lcp::simd::avx2
