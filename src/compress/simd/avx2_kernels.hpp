#pragma once
// Declarations for the AVX2 kernel translation unit
// (compress/simd/avx2_kernels.cpp, compiled with -mavx2). This header is
// intrinsic-free so any TU can include it; call sites must be guarded with
// #if defined(LCP_HAVE_AVX2_BUILD) (the macro is defined target-wide when
// the AVX2 TU is part of the build) AND gate on simd::simd_level() — the
// definitions only exist when the TU was compiled, and executing them on a
// non-AVX2 host is illegal.
//
// Every kernel here has a scalar twin in the calling TU producing
// bit-identical output; see compress/sz/prequant.hpp for the shared
// arithmetic contract.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/sz/prequant.hpp"

namespace lcp::simd::avx2 {

// --- SZ prequantized Lorenzo pipeline --------------------------------------

/// values -> saturated grid indices, 8 floats per iteration, scalar tail.
void prequantize(const float* values, std::size_t n, double inv_step,
                 std::int32_t* grid) noexcept;

/// Row-interior prediction kernels. `site` points at the row base inside
/// the grid, `pred` at the same flat offset in the prediction array; both
/// are filled for k in [k0, n). The caller guarantees every neighbour the
/// unguarded stencil touches exists (border rows stay on the scalar
/// guarded path).
void predict_row_l1_1d(const std::int32_t* site, std::size_t k0,
                       std::size_t n, std::int32_t* pred) noexcept;
void predict_row_l2_1d(const std::int32_t* site, std::size_t k0,
                       std::size_t n, std::int32_t* pred) noexcept;
void predict_row_l1_2d(const std::int32_t* site, std::size_t n1,
                       std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept;
void predict_row_l2_2d(const std::int32_t* site, std::size_t n1,
                       std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept;
void predict_row_l1_3d(const std::int32_t* site, std::size_t plane,
                       std::size_t n2, std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept;
void predict_row_l2_3d(const std::int32_t* site, std::size_t plane,
                       std::size_t n2, std::size_t k0, std::size_t n,
                       std::int32_t* pred) noexcept;

/// Flat finish pass: codes/decoded for all n sites from (values, grid,
/// pred); exact raw bit patterns appended in stream order. Groups where
/// every lane admits its code run fully vectorized; any group with a bail
/// lane is replayed through sz::encode_site, which computes the identical
/// result for the non-bailing lanes. Requires radius <= kSimdMaxRadius
/// (see pipeline.cpp) so the int32 lane arithmetic cannot wrap.
void encode_finish(const float* values, const std::int32_t* grid,
                   const std::int32_t* pred, std::size_t n,
                   const sz::PrequantParams& p, std::uint32_t* codes,
                   float* decoded, std::vector<std::uint32_t>& exact);

/// First-order telescoped row decode. Within a row the recurrence
/// r[k] = C[k] + u[k], u[k] = u[k-1] + (code[k] - radius) holds, where the
/// cross-row carry C[k] = a[k] + b[k] - ab[k] over the nullable
/// neighbour-row pointers (rank 1 / border rows pass nullptr). Processes
/// 8-lane groups from k0 and stops at the first group containing an exact
/// site, an out-of-range code, or an off-grid index, returning that
/// group's start; the caller decodes up to 8 sites through the shared
/// scalar helper and resumes. Returns n when the row (minus a < 8 tail)
/// is done. Requires radius <= kSimdMaxRadius.
[[nodiscard]] std::size_t decode_row_l1(
    const std::uint32_t* codes, const std::int32_t* a, const std::int32_t* b,
    const std::int32_t* ab, std::size_t k0, std::size_t n,
    std::int32_t radius, double step, std::int32_t* row,
    float* decoded) noexcept;

// --- Byte shuffle (lossless/shuffle_codec.cpp) ------------------------------

/// Transpose n floats into 4 byte planes (plane stride n), 8 floats per
/// shuffle_epi8+permutevar iteration, scalar tail.
void shuffle_bytes(const float* values, std::size_t n,
                   std::uint8_t* out) noexcept;

/// Inverse of shuffle_bytes.
void unshuffle_bytes(const std::uint8_t* bytes, std::size_t n,
                     float* out) noexcept;

// --- ZFP embedded coder (zfp/embedded_coder.cpp) ----------------------------

/// Extract bit `plane` from up to 64 coefficient words into one plane word
/// (bit t of the result = bit `plane` of coeffs[t]), via shift-to-sign +
/// movemask over 4 words per iteration.
[[nodiscard]] std::uint64_t gather_plane(const std::uint64_t* coeffs,
                                         unsigned plane,
                                         std::size_t count) noexcept;

}  // namespace lcp::simd::avx2
