#pragma once
// SIMD dispatch for the codec hot kernels (SZ prequant/Lorenzo, Huffman
// decode, byte shuffle, zlite, ZFP plane gather).
//
// Resolution order: the level is kAvx2 only when (a) the AVX2 translation
// unit was compiled into this binary (x86-64 build with a -mavx2-capable
// compiler), (b) the host CPU reports AVX2, and (c) LCP_FORCE_SCALAR is not
// set. Each kernel entry point queries simd_level() once per pass and then
// runs a straight-line loop — no per-element dispatch.
//
// Every vector kernel has a scalar twin producing bit-identical bytes:
// the quantization grid, quantization codes, exact-value side stream,
// Huffman symbol stream, shuffled planes and ZFP plane words are all equal
// under either level, so framing/checkpoint/replica invariants never
// depend on the host's instruction set. simd_identity_test pins this
// across codec x rank x bound x size.

#include <cstdint>

namespace lcp::simd {

/// Dispatch levels, ordered: a level implies all lower ones.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// The level kernels run at right now (build gate, cpuid, LCP_FORCE_SCALAR
/// and any active ScopedSimdLevel override combined). Cheap: one relaxed
/// atomic load after first resolution.
[[nodiscard]] SimdLevel simd_level() noexcept;

/// The level the build + host support, ignoring overrides (but honouring
/// LCP_FORCE_SCALAR). What ScopedSimdLevel requests are clamped to.
[[nodiscard]] SimdLevel hardware_simd_level() noexcept;

/// "scalar" / "avx2" — stable strings used by bench JSON keys.
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

/// RAII override for tests and benches: forces dispatch down to `level`
/// (requests above hardware_simd_level() are clamped, so asking for kAvx2
/// on a scalar-only host/build is a safe no-op). Restores the previous
/// override on destruction; nestable. Affects the whole process.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) noexcept;
  ~ScopedSimdLevel();

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  int previous_;
};

}  // namespace lcp::simd
