#include "model/partitions.hpp"

namespace lcp::model {

const std::vector<Partition>& compression_partitions() {
  static const std::vector<Partition> partitions = {
      {"Total", std::nullopt, std::nullopt},
      {"SZ", CodecFilter::kSz, std::nullopt},
      {"ZFP", CodecFilter::kZfp, std::nullopt},
      {"Broadwell", std::nullopt, power::ChipId::kBroadwellD1548},
      {"Skylake", std::nullopt, power::ChipId::kSkylake4114},
  };
  return partitions;
}

const std::vector<Partition>& transit_partitions() {
  static const std::vector<Partition> partitions = {
      {"Total", std::nullopt, std::nullopt},
      {"Broadwell", std::nullopt, power::ChipId::kBroadwellD1548},
      {"Skylake", std::nullopt, power::ChipId::kSkylake4114},
  };
  return partitions;
}

}  // namespace lcp::model
