#pragma once
// Goodness-of-fit statistics reported in Tables IV and V: SSE, RMSE and
// R^2 (with the paper's caveat that R^2 is unreliable for nonlinear fits —
// Section IV cites Cameron & Windmeijer on exactly this).

#include <span>

namespace lcp::model {

struct FitStats {
  double sse = 0.0;
  double rmse = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};

/// Computes stats for predictions vs observations (equal length, n > 0).
[[nodiscard]] FitStats compute_fit_stats(std::span<const double> observed,
                                         std::span<const double> predicted);

}  // namespace lcp::model
