#include "model/levenberg_marquardt.hpp"

#include <algorithm>
#include <cmath>

namespace lcp::model {
namespace {

double compute_sse(const ModelFn& model, std::span<const double> y,
                   std::span<const double> p) {
  double sse = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - model(p, i);
    sse += r * r;
  }
  return sse;
}

void clamp_params(std::vector<double>& p, const LmOptions& opt) {
  if (!opt.lower.empty()) {
    for (std::size_t j = 0; j < p.size() && j < opt.lower.size(); ++j) {
      p[j] = std::max(p[j], opt.lower[j]);
    }
  }
  if (!opt.upper.empty()) {
    for (std::size_t j = 0; j < p.size() && j < opt.upper.size(); ++j) {
      p[j] = std::min(p[j], opt.upper[j]);
    }
  }
}

}  // namespace

bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n) {
  // Gaussian elimination with partial pivoting on the n x n system in `a`.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double v = std::fabs(a[row * n + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (best < 1e-300) {
      return false;
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / diag;
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t col = n; col-- > 0;) {
    double acc = b[col];
    for (std::size_t k = col + 1; k < n; ++k) {
      acc -= a[col * n + k] * b[k];
    }
    b[col] = acc / a[col * n + col];
  }
  return true;
}

Expected<LmResult> lm_fit(const ModelFn& model, std::span<const double> y,
                          std::span<const double> initial,
                          const LmOptions& options) {
  const std::size_t m = y.size();
  const std::size_t n = initial.size();
  if (m == 0 || n == 0) {
    return Status::invalid_argument("lm_fit: empty data or parameters");
  }
  if (m < n) {
    return Status::invalid_argument("lm_fit: underdetermined system");
  }

  LmResult result;
  result.params.assign(initial.begin(), initial.end());
  clamp_params(result.params, options);
  result.sse = compute_sse(model, y, result.params);

  double lambda = options.initial_lambda;
  std::vector<double> jac(m * n);
  std::vector<double> residual(m);
  std::vector<double> jtj(n * n);
  std::vector<double> jtr(n);
  std::vector<double> trial(n);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Residuals and central-difference Jacobian at the current point.
    for (std::size_t i = 0; i < m; ++i) {
      residual[i] = y[i] - model(result.params, i);
    }
    std::vector<double> probe = result.params;
    for (std::size_t j = 0; j < n; ++j) {
      const double pj = result.params[j];
      const double h = std::max(1e-8, 1e-6 * std::fabs(pj));
      probe[j] = pj + h;
      clamp_params(probe, options);
      const double hi_h = probe[j] - pj;
      std::vector<double> hi(m);
      for (std::size_t i = 0; i < m; ++i) {
        hi[i] = model(probe, i);
      }
      probe[j] = pj - h;
      clamp_params(probe, options);
      const double lo_h = pj - probe[j];
      for (std::size_t i = 0; i < m; ++i) {
        const double lo = model(probe, i);
        const double dh = hi_h + lo_h;
        jac[i * n + j] = dh > 0 ? (hi[i] - lo) / dh : 0.0;
      }
      probe[j] = pj;
    }

    // Normal equations: (J^T J + lambda diag(J^T J)) dp = J^T r.
    std::fill(jtj.begin(), jtj.end(), 0.0);
    std::fill(jtr.begin(), jtr.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double jij = jac[i * n + j];
        jtr[j] += jij * residual[i];
        for (std::size_t k = j; k < n; ++k) {
          jtj[j * n + k] += jij * jac[i * n + k];
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < j; ++k) {
        jtj[j * n + k] = jtj[k * n + j];
      }
    }

    bool improved = false;
    while (lambda <= options.max_lambda) {
      std::vector<double> a = jtj;
      std::vector<double> dp = jtr;
      for (std::size_t j = 0; j < n; ++j) {
        a[j * n + j] += lambda * std::max(jtj[j * n + j], 1e-12);
      }
      if (!solve_dense(a, dp, n)) {
        lambda *= options.lambda_up;
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        trial[j] = result.params[j] + dp[j];
      }
      clamp_params(trial, options);
      const double trial_sse = compute_sse(model, y, trial);
      if (std::isfinite(trial_sse) && trial_sse < result.sse) {
        const double rel = (result.sse - trial_sse) / std::max(result.sse, 1e-300);
        result.params = trial;
        result.sse = trial_sse;
        lambda = std::max(options.min_lambda, lambda * options.lambda_down);
        improved = true;
        if (rel < options.tolerance) {
          result.converged = true;
          return result;
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!improved) {
      result.converged = true;  // local minimum at working precision
      return result;
    }
  }
  return result;
}

}  // namespace lcp::model
