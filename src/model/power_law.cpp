#include "model/power_law.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "model/levenberg_marquardt.hpp"
#include "support/stats.hpp"

namespace lcp::model {

double PowerLawFit::evaluate(double f_ghz) const noexcept {
  return a * std::pow(f_ghz, b) + c;
}

std::string PowerLawFit::to_string() const {
  char buf[128];
  if (std::fabs(a) < 1e-4) {
    std::snprintf(buf, sizeof(buf), "%.3e*f^%.2f + %.4f", a, b, c);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f*f^%.3f + %.4f", a, b, c);
  }
  return buf;
}

Expected<PowerLawFit> fit_power_law(std::span<const double> f_ghz,
                                    std::span<const double> p,
                                    const PowerLawOptions& options) {
  if (f_ghz.size() != p.size()) {
    return Status::invalid_argument("power-law fit: size mismatch");
  }
  if (f_ghz.size() < 4) {
    return Status::invalid_argument("power-law fit: need >= 4 observations");
  }
  for (double f : f_ghz) {
    if (!(f > 0.0)) {
      return Status::invalid_argument("power-law fit: frequencies must be > 0");
    }
  }

  const ModelFn model = [&f_ghz](std::span<const double> q, std::size_t i) {
    return q[0] * std::pow(f_ghz[i], q[1]) + q[2];
  };

  LmOptions lm;
  lm.lower = {0.0, options.b_min, -1e6};
  lm.upper = {1e6, options.b_max, 1e6};

  const double p_min = *std::min_element(p.begin(), p.end());
  const double p_max = *std::max_element(p.begin(), p.end());
  const double f_max = *std::max_element(f_ghz.begin(), f_ghz.end());

  PowerLawFit best;
  double best_sse = std::numeric_limits<double>::infinity();
  for (double b0 : options.b_starts) {
    // Heuristic start: c at the observed floor, `a` sized so the power-law
    // term spans the observed range at f_max.
    const double a0 =
        std::max(1e-12, (p_max - p_min) / std::pow(f_max, b0));
    const std::vector<double> initial = {a0, b0, p_min};
    auto result = lm_fit(model, p, initial, lm);
    if (!result) {
      continue;
    }
    if (result->sse < best_sse) {
      best_sse = result->sse;
      best.a = result->params[0];
      best.b = result->params[1];
      best.c = result->params[2];
    }
  }
  if (!std::isfinite(best_sse)) {
    return Status::internal("power-law fit failed from every start");
  }

  std::vector<double> predicted(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    predicted[i] = best.evaluate(f_ghz[i]);
  }
  best.stats = compute_fit_stats(p, predicted);
  return best;
}

Expected<FitStats> validate_fit(const PowerLawFit& fit,
                                std::span<const double> f_ghz,
                                std::span<const double> p) {
  if (f_ghz.size() != p.size() || p.empty()) {
    return Status::invalid_argument("validate_fit: bad inputs");
  }
  std::vector<double> predicted(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    predicted[i] = fit.evaluate(f_ghz[i]);
  }
  return compute_fit_stats(p, predicted);
}

}  // namespace lcp::model
