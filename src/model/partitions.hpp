#pragma once
// Table III: the five data partitions the paper regresses separately for
// compression ({Total, SZ, ZFP, Broadwell, Skylake}) and the three for
// data transit ({Total, Broadwell, Skylake}).

#include <optional>
#include <string>
#include <vector>

#include "power/chip_model.hpp"

namespace lcp::model {

/// Compressor family selector for a partition (nullopt = both).
enum class CodecFilter : std::uint8_t { kSz = 0, kZfp = 1 };

/// One regression partition.
struct Partition {
  std::string name;                          ///< "Total", "SZ", "Broadwell"...
  std::optional<CodecFilter> codec;          ///< nullopt = both compressors
  std::optional<power::ChipId> chip;         ///< nullopt = both chips

  /// Does an observation tagged (codec, chip) fall in this partition?
  [[nodiscard]] bool matches(CodecFilter obs_codec,
                             power::ChipId obs_chip) const noexcept {
    if (codec.has_value() && *codec != obs_codec) {
      return false;
    }
    if (chip.has_value() && *chip != obs_chip) {
      return false;
    }
    return true;
  }
};

/// Table III rows: Total, SZ, ZFP, Broadwell, Skylake.
[[nodiscard]] const std::vector<Partition>& compression_partitions();

/// Table V rows: Total, Broadwell, Skylake (transit has no codec axis).
[[nodiscard]] const std::vector<Partition>& transit_partitions();

}  // namespace lcp::model
