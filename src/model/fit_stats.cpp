#include "model/fit_stats.hpp"

#include <cmath>

#include "support/stats.hpp"
#include "support/status.hpp"

namespace lcp::model {

FitStats compute_fit_stats(std::span<const double> observed,
                           std::span<const double> predicted) {
  LCP_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
              "fit stats need equal-length non-empty inputs");
  FitStats stats;
  stats.n = observed.size();

  const double mean_obs = lcp::mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    ss_res += r * r;
    const double d = observed[i] - mean_obs;
    ss_tot += d * d;
  }
  stats.sse = ss_res;
  stats.rmse = std::sqrt(ss_res / static_cast<double>(stats.n));
  stats.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return stats;
}

}  // namespace lcp::model
