#pragma once
// Parameter confidence intervals for the fitted power-law models: the
// linearized covariance C = s^2 (J^T J)^-1 at the optimum with
// s^2 = SSE/(n-p), and t-based 95% half-widths per parameter. The paper
// reports only point estimates; intervals make the Table IV/V comparison
// between partitions statistically honest (e.g. whether the SZ and ZFP
// rows differ significantly — they should not).

#include <span>

#include "model/power_law.hpp"
#include "support/status.hpp"

namespace lcp::model {

/// 95% confidence half-widths for (a, b, c).
struct PowerLawConfidence {
  double a_half = 0.0;
  double b_half = 0.0;
  double c_half = 0.0;
  double residual_stddev = 0.0;  ///< s = sqrt(SSE / (n - 3))
};

/// Computes intervals for `fit` against the observations it was fitted on.
/// Requires n > 3. Fails if the normal matrix is singular (e.g. perfectly
/// flat data where a and c are unidentifiable).
[[nodiscard]] Expected<PowerLawConfidence> power_law_confidence(
    const PowerLawFit& fit, std::span<const double> f_ghz,
    std::span<const double> p);

}  // namespace lcp::model
