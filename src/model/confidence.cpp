#include "model/confidence.hpp"

#include <cmath>
#include <vector>

#include "model/levenberg_marquardt.hpp"
#include "support/stats.hpp"

namespace lcp::model {

Expected<PowerLawConfidence> power_law_confidence(const PowerLawFit& fit,
                                                  std::span<const double> f_ghz,
                                                  std::span<const double> p) {
  const std::size_t n = f_ghz.size();
  if (n != p.size()) {
    return Status::invalid_argument("confidence: size mismatch");
  }
  if (n <= 3) {
    return Status::invalid_argument("confidence: need more than 3 points");
  }

  // Analytic Jacobian of a*f^b + c at the optimum.
  // d/da = f^b, d/db = a f^b ln f, d/dc = 1.
  std::vector<double> jtj(9, 0.0);
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double fb = std::pow(f_ghz[i], fit.b);
    const double row[3] = {fb, fit.a * fb * std::log(f_ghz[i]), 1.0};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        jtj[r * 3 + c] += row[r] * row[c];
      }
    }
    const double resid = p[i] - fit.evaluate(f_ghz[i]);
    sse += resid * resid;
  }

  // Invert J^T J column by column.
  double inv_diag[3];
  for (int col = 0; col < 3; ++col) {
    std::vector<double> a = jtj;
    std::vector<double> e(3, 0.0);
    e[static_cast<std::size_t>(col)] = 1.0;
    if (!solve_dense(a, e, 3)) {
      return Status::internal("confidence: singular normal matrix");
    }
    inv_diag[col] = e[static_cast<std::size_t>(col)];
    if (!(inv_diag[col] >= 0.0)) {
      return Status::internal("confidence: negative variance estimate");
    }
  }

  const double s2 = sse / static_cast<double>(n - 3);
  const double t = t_quantile_975(n - 3);
  PowerLawConfidence out;
  out.residual_stddev = std::sqrt(s2);
  out.a_half = t * std::sqrt(s2 * inv_diag[0]);
  out.b_half = t * std::sqrt(s2 * inv_diag[1]);
  out.c_half = t * std::sqrt(s2 * inv_diag[2]);
  return out;
}

}  // namespace lcp::model
