#pragma once
// The paper's model family (Eqn 2): P_fit(f) = a * f^b + c, fitted to
// scaled power observations with multi-start Levenberg-Marquardt (the
// exponent landscape is multimodal — Skylake's best fit sits near b ~ 20,
// Broadwell's near b ~ 5, so single-start gradient descent is not enough).

#include <span>
#include <string>
#include <vector>

#include "model/fit_stats.hpp"
#include "support/status.hpp"
#include "support/units.hpp"

namespace lcp::model {

/// A fitted a*f^b + c model plus its goodness of fit.
struct PowerLawFit {
  double a = 0.0;
  double b = 1.0;
  double c = 0.0;
  FitStats stats;

  /// Evaluates the model at frequency `f` (GHz).
  [[nodiscard]] double evaluate(double f_ghz) const noexcept;
  [[nodiscard]] double evaluate(GigaHertz f) const noexcept {
    return evaluate(f.ghz());
  }

  /// "0.0086 f^4.038 + 0.757"-style rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Fit options.
struct PowerLawOptions {
  /// Exponent starting points for the multi-start search.
  std::vector<double> b_starts = {1.0, 2.0, 3.5, 5.0, 8.0, 12.0, 18.0, 24.0};
  double b_min = 0.5;
  double b_max = 40.0;
};

/// Fits a*f^b + c to (f, p) observations. Requires >= 4 points.
[[nodiscard]] Expected<PowerLawFit> fit_power_law(
    std::span<const double> f_ghz, std::span<const double> p,
    const PowerLawOptions& options = {});

/// Evaluates an existing fit against new observations (the Fig 5
/// Hurricane-ISABEL validation): returns SSE/RMSE/R^2 of the fixed model
/// on the new data.
[[nodiscard]] Expected<FitStats> validate_fit(const PowerLawFit& fit,
                                              std::span<const double> f_ghz,
                                              std::span<const double> p);

}  // namespace lcp::model
