#pragma once
// Small dense Levenberg-Marquardt solver for nonlinear least squares —
// the in-library replacement for the MATLAB Curve Fitting Toolbox the
// paper uses. Designed for few-parameter models (<= 8) over thousands of
// observations; normal equations are solved with partial-pivot Gaussian
// elimination, which is plenty at this scale.

#include <functional>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace lcp::model {

/// Model callback: predicted value at observation `i` for parameters `p`.
using ModelFn =
    std::function<double(std::span<const double> p, std::size_t i)>;

/// Options controlling the solver.
struct LmOptions {
  std::size_t max_iterations = 200;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.3;
  double tolerance = 1e-12;       ///< relative SSE improvement to stop
  double min_lambda = 1e-12;
  double max_lambda = 1e12;
  /// Optional per-parameter lower/upper clamps (empty = unbounded).
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Fit result.
struct LmResult {
  std::vector<double> params;
  double sse = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimizes sum_i (y[i] - model(p, i))^2 starting from `initial`.
/// The Jacobian is computed by central finite differences.
[[nodiscard]] Expected<LmResult> lm_fit(const ModelFn& model,
                                        std::span<const double> y,
                                        std::span<const double> initial,
                                        const LmOptions& options = {});

/// Solves A x = b for a small dense symmetric system (exposed for tests).
/// Returns false if the system is singular to working precision.
[[nodiscard]] bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                               std::size_t n);

}  // namespace lcp::model
