#pragma once
// perf-style measurement of a simulated run: "perf stat -e energy-pkg"
// semantics over the chip model. One call = one execution of a workload at
// a pinned frequency, returning noisy (energy, runtime) exactly as the
// paper's measurement loop observes them.

#include <vector>

#include "power/chip_model.hpp"
#include "power/energy_counter.hpp"
#include "power/noise_model.hpp"
#include "power/workload.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace lcp::power {

/// One measured execution.
struct Measurement {
  Seconds runtime;
  Joules energy;

  [[nodiscard]] Watts average_power() const noexcept {
    return runtime.seconds() > 0.0 ? energy / runtime : Watts{0.0};
  }
};

/// Samples workload executions on one chip. Owns the RAPL-style counter and
/// the noise stream, so repeated samples are independent draws.
class PerfSampler {
 public:
  PerfSampler(const ChipSpec& spec, NoiseModel noise, std::uint64_t seed);

  /// Runs `w` once at frequency `f` (must be within the chip's range).
  [[nodiscard]] Measurement sample(const Workload& w, GigaHertz f);

  /// Runs `w` `repeats` times and returns each measurement.
  [[nodiscard]] std::vector<Measurement> sample_repeats(const Workload& w,
                                                        GigaHertz f,
                                                        std::size_t repeats);

  /// Pure variant for parallel harnesses: samples `repeats` runs from an
  /// independent noise stream derived from (constructor seed, `stream`),
  /// touching neither the shared RNG nor the energy counter. Identical
  /// (seed, stream, workload, f, repeats) always yields identical draws,
  /// regardless of interleaving with other streams or threads.
  [[nodiscard]] std::vector<Measurement> sample_repeats_stream(
      const Workload& w, GigaHertz f, std::size_t repeats,
      std::uint64_t stream) const;

  /// Folds a measurement produced by sample_repeats_stream into the
  /// package counter (call in deterministic order for reproducible RAPL
  /// readings).
  void record(const Measurement& m) { counter_.add(m.energy); }

  /// Cumulative package counter across all samples (RAPL view).
  [[nodiscard]] const EnergyCounter& counter() const noexcept {
    return counter_;
  }

  [[nodiscard]] const ChipSpec& spec() const noexcept { return spec_; }

 private:
  const ChipSpec& spec_;
  NoiseModel noise_;
  std::uint64_t seed_;
  Rng rng_;
  EnergyCounter counter_;
};

}  // namespace lcp::power
