#include "power/workload.hpp"

#include <algorithm>

#include "power/chip_model.hpp"
#include "support/status.hpp"

namespace lcp::power {

Seconds workload_runtime(const Workload& w, const ChipSpec& spec,
                         GigaHertz f) noexcept {
  const double t_cpu = w.cpu_ghz_seconds / (f.ghz() * spec.perf_factor);
  const double busy = std::max(t_cpu, w.floor_seconds.seconds());
  return Seconds{busy + w.stall_seconds.seconds()};
}

double effective_activity(const Workload& w, const ChipSpec& spec,
                          GigaHertz f) noexcept {
  const double t_cpu = w.cpu_ghz_seconds / (f.ghz() * spec.perf_factor);
  const double busy = std::max(t_cpu, w.floor_seconds.seconds());
  if (busy <= 0.0) {
    return 0.0;
  }
  // Stall time counts as active-but-waiting (memory traffic keeps the
  // package busy); only the pipeline floor idles the core.
  const double utilization = std::min(1.0, t_cpu / busy);
  return w.activity * (0.25 + 0.75 * utilization);
}

Watts workload_power(const Workload& w, const ChipSpec& spec,
                     GigaHertz f) noexcept {
  return package_power(spec, f, effective_activity(w, spec, f));
}

Joules workload_energy(const Workload& w, const ChipSpec& spec,
                       GigaHertz f) noexcept {
  return workload_power(w, spec, f) * workload_runtime(w, spec, f);
}

Workload compression_workload(const ChipSpec& spec, Seconds native_seconds,
                              double cpu_fraction, double activity,
                              double reference_ghz) {
  LCP_REQUIRE(cpu_fraction >= 0.0 && cpu_fraction <= 1.0,
              "cpu_fraction must be in [0, 1]");
  // Project the native calibration run onto this chip: wall time at the
  // chip's max clock stretches by the single-core speed ratio, and
  // `cpu_fraction` is interpreted as the cpu-bound share *at f_max* (the
  // beta that governs the runtime/frequency trade-off).
  const double speedup = spec.f_max.ghz() * spec.perf_factor / reference_ghz;
  const double t_fmax = native_seconds.seconds() / speedup;
  Workload w;
  w.cpu_ghz_seconds =
      cpu_fraction * t_fmax * spec.f_max.ghz() * spec.perf_factor;
  w.stall_seconds = Seconds{(1.0 - cpu_fraction) * t_fmax};
  w.floor_seconds = Seconds{0.0};
  w.activity = activity;
  return w;
}

}  // namespace lcp::power
