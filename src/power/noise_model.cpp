#include "power/noise_model.hpp"

#include <algorithm>

namespace lcp::power {
namespace {

double clamped_factor(double sigma, double max_abs_z, Rng& rng) noexcept {
  if (sigma <= 0.0) {
    return 1.0;
  }
  const double z = std::clamp(rng.normal(), -max_abs_z, max_abs_z);
  return std::max(0.05, 1.0 + sigma * z);
}

}  // namespace

Seconds NoiseModel::perturb_runtime(Seconds t, Rng& rng) const noexcept {
  return t * clamped_factor(runtime_sigma, max_abs_z, rng);
}

Watts NoiseModel::perturb_power(Watts p, Rng& rng) const noexcept {
  return p * clamped_factor(power_sigma, max_abs_z, rng);
}

}  // namespace lcp::power
