#include "power/uncore.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/status.hpp"

namespace lcp::power {
namespace {

// Uncore envelopes follow the parts' UFS ranges; Skylake-SP exposes a wide
// uncore range (Schoene et al., HPCS'19 — the paper's ref [22] measures
// exactly this part family), Broadwell-DE a narrower one.
const UncoreSpec kBroadwellUncore = {
    GigaHertz{1.2}, GigaHertz{2.4}, GigaHertz::from_mhz(100),
    0.45,  // share of static power
    0.55,  // of which clock-scaled
    0.7,   // stall-time sensitivity
};

const UncoreSpec kSkylakeUncore = {
    GigaHertz{1.2}, GigaHertz{2.4}, GigaHertz::from_mhz(100),
    0.55,
    0.60,
    0.8,
};

}  // namespace

const UncoreSpec& uncore(ChipId id) {
  switch (id) {
    case ChipId::kBroadwellD1548:
      return kBroadwellUncore;
    case ChipId::kSkylake4114:
      return kSkylakeUncore;
  }
  LCP_REQUIRE(false, "unknown chip id");
  return kBroadwellUncore;
}

Watts package_power_uncore(const ChipSpec& spec, const UncoreSpec& unc,
                           GigaHertz f_core, GigaHertz f_uncore,
                           double activity) noexcept {
  // Split the chip's static power into a non-uncore part and the uncore
  // share; the clock-scaled slice of the uncore share shrinks linearly
  // with its frequency.
  const double uncore_full = spec.static_power.watts() * unc.share_of_static;
  const double other_static = spec.static_power.watts() - uncore_full;
  const double ratio =
      std::clamp(f_uncore.ghz() / unc.f_max.ghz(), 0.0, 1.0);
  const double uncore_now =
      uncore_full * (1.0 - unc.dynamic_fraction * (1.0 - ratio));

  const double v = spec.vf.at(f_core).volts();
  const double core_dynamic = spec.dyn_coeff * v * v * f_core.ghz() * activity;
  return Watts{other_static + uncore_now + core_dynamic};
}

Seconds workload_runtime_uncore(const Workload& w, const ChipSpec& spec,
                                const UncoreSpec& unc, GigaHertz f_core,
                                GigaHertz f_uncore) noexcept {
  const double t_cpu = w.cpu_ghz_seconds / (f_core.ghz() * spec.perf_factor);
  const double stretch =
      std::pow(unc.f_max.ghz() / std::max(f_uncore.ghz(), 1e-9),
               unc.stall_sensitivity);
  const double stall = w.stall_seconds.seconds() * stretch;
  const double busy = std::max(t_cpu, w.floor_seconds.seconds());
  return Seconds{busy + stall};
}

Watts workload_power_uncore(const Workload& w, const ChipSpec& spec,
                            const UncoreSpec& unc, GigaHertz f_core,
                            GigaHertz f_uncore) noexcept {
  return package_power_uncore(spec, unc, f_core, f_uncore,
                              effective_activity(w, spec, f_core));
}

Joules workload_energy_uncore(const Workload& w, const ChipSpec& spec,
                              const UncoreSpec& unc, GigaHertz f_core,
                              GigaHertz f_uncore) noexcept {
  return workload_power_uncore(w, spec, unc, f_core, f_uncore) *
         workload_runtime_uncore(w, spec, unc, f_core, f_uncore);
}

namespace {

std::vector<GigaHertz> grid(GigaHertz lo, GigaHertz hi, GigaHertz step) {
  std::vector<GigaHertz> out;
  for (double f = lo.ghz(); f <= hi.ghz() + 1e-9; f += step.ghz()) {
    out.push_back(GigaHertz{f});
  }
  if (out.empty() || out.back().ghz() < hi.ghz() - 1e-9) {
    out.push_back(hi);
  }
  return out;
}

}  // namespace

OperatingPoint energy_optimal_operating_point(const Workload& w,
                                              const ChipSpec& spec,
                                              const UncoreSpec& unc) {
  OperatingPoint best{spec.f_max, unc.f_max};
  double best_energy =
      workload_energy_uncore(w, spec, unc, best.core, best.uncore).joules();
  for (GigaHertz fc : grid(spec.f_min, spec.f_max, spec.f_step)) {
    for (GigaHertz fu : grid(unc.f_min, unc.f_max, unc.f_step)) {
      const double e = workload_energy_uncore(w, spec, unc, fc, fu).joules();
      if (e < best_energy) {
        best_energy = e;
        best = {fc, fu};
      }
    }
  }
  return best;
}

}  // namespace lcp::power
