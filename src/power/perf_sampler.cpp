#include "power/perf_sampler.hpp"

#include "support/status.hpp"

namespace lcp::power {

PerfSampler::PerfSampler(const ChipSpec& spec, NoiseModel noise,
                         std::uint64_t seed)
    : spec_(spec), noise_(noise), rng_(seed) {}

Measurement PerfSampler::sample(const Workload& w, GigaHertz f) {
  LCP_REQUIRE(f >= spec_.f_min && f <= spec_.f_max,
              "frequency outside the chip's DVFS range");
  const Seconds t_true = workload_runtime(w, spec_, f);
  const Watts p_true = workload_power(w, spec_, f);

  Measurement m;
  m.runtime = noise_.perturb_runtime(t_true, rng_);
  m.energy = noise_.perturb_power(p_true, rng_) * m.runtime;
  counter_.add(m.energy);
  return m;
}

std::vector<Measurement> PerfSampler::sample_repeats(const Workload& w,
                                                     GigaHertz f,
                                                     std::size_t repeats) {
  std::vector<Measurement> out;
  out.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    out.push_back(sample(w, f));
  }
  return out;
}

}  // namespace lcp::power
