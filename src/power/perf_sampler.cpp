#include "power/perf_sampler.hpp"

#include "support/status.hpp"

namespace lcp::power {

PerfSampler::PerfSampler(const ChipSpec& spec, NoiseModel noise,
                         std::uint64_t seed)
    : spec_(spec), noise_(noise), seed_(seed), rng_(seed) {}

Measurement PerfSampler::sample(const Workload& w, GigaHertz f) {
  LCP_REQUIRE(f >= spec_.f_min && f <= spec_.f_max,
              "frequency outside the chip's DVFS range");
  const Seconds t_true = workload_runtime(w, spec_, f);
  const Watts p_true = workload_power(w, spec_, f);

  Measurement m;
  m.runtime = noise_.perturb_runtime(t_true, rng_);
  m.energy = noise_.perturb_power(p_true, rng_) * m.runtime;
  counter_.add(m.energy);
  return m;
}

std::vector<Measurement> PerfSampler::sample_repeats(const Workload& w,
                                                     GigaHertz f,
                                                     std::size_t repeats) {
  std::vector<Measurement> out;
  out.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    out.push_back(sample(w, f));
  }
  return out;
}

std::vector<Measurement> PerfSampler::sample_repeats_stream(
    const Workload& w, GigaHertz f, std::size_t repeats,
    std::uint64_t stream) const {
  LCP_REQUIRE(f >= spec_.f_min && f <= spec_.f_max,
              "frequency outside the chip's DVFS range");
  // Stream keying: the golden-ratio stride decorrelates consecutive
  // streams through the splitmix64 seeding inside Rng.
  Rng rng{seed_ + (stream + 1) * 0x9e3779b97f4a7c15ULL};
  const Seconds t_true = workload_runtime(w, spec_, f);
  const Watts p_true = workload_power(w, spec_, f);

  std::vector<Measurement> out;
  out.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    Measurement m;
    m.runtime = noise_.perturb_runtime(t_true, rng);
    m.energy = noise_.perturb_power(p_true, rng) * m.runtime;
    out.push_back(m);
  }
  return out;
}

}  // namespace lcp::power
