#pragma once
// Workload descriptor: the frequency-independent characterization of one
// job (a compression run or an NFS write) that the platform simulator maps
// to runtime/power/energy at any DVFS point.
//
// Runtime model:   t(f) = cpu_ghz_seconds / (f * perf_factor) + stall_seconds
// with an optional pipeline floor (wire/disk) for I/O workloads:
//                  t(f) = max(t_cpu(f), floor_seconds) + setup_seconds + stall...
// The cpu-bound fraction beta at f_max determines how runtime reacts to
// frequency tuning — the quantity behind the paper's +7.5%/+9.3% runtime
// trade-offs.

#include "support/units.hpp"

namespace lcp::power {

struct ChipSpec;  // chip_model.hpp

/// One simulatable job.
struct Workload {
  /// Core work in GHz-seconds: cycles / 1e9. Time share that scales ~1/f.
  double cpu_ghz_seconds = 0.0;
  /// Frequency-invariant share (memory stalls, fixed software overhead).
  Seconds stall_seconds{0.0};
  /// Hard lower bound on wall time imposed by an external pipeline stage
  /// (network wire or server disk); 0 for pure-compute jobs.
  Seconds floor_seconds{0.0};
  /// Dynamic activity factor of the package while the job runs (0..1),
  /// scaled down further when the CPU idles against floor_seconds.
  double activity = 1.0;
};

/// Wall time of `w` on `spec` at frequency `f`.
[[nodiscard]] Seconds workload_runtime(const Workload& w, const ChipSpec& spec,
                                       GigaHertz f) noexcept;

/// Effective activity factor at `f`: when the pipeline floor dominates, the
/// core stalls and dynamic activity drops proportionally to utilization.
[[nodiscard]] double effective_activity(const Workload& w, const ChipSpec& spec,
                                        GigaHertz f) noexcept;

/// Mean package power while running `w` at `f`.
[[nodiscard]] Watts workload_power(const Workload& w, const ChipSpec& spec,
                                   GigaHertz f) noexcept;

/// Energy = power * runtime (Eqn 1).
[[nodiscard]] Joules workload_energy(const Workload& w, const ChipSpec& spec,
                                     GigaHertz f) noexcept;

/// Builds a compression workload for `spec` from a native calibration run.
///
/// `native_seconds` is the wall time measured on the build host (assumed
/// running at `reference_ghz`); `cpu_fraction` is the share of that time
/// that scales with core frequency (SZ/ZFP are partially memory-bound).
[[nodiscard]] Workload compression_workload(const ChipSpec& spec,
                                            Seconds native_seconds,
                                            double cpu_fraction,
                                            double activity,
                                            double reference_ghz = 3.0);

}  // namespace lcp::power
