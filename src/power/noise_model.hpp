#pragma once
// Measurement-noise model for the simulated RAPL/perf readings. The paper
// repeats every measurement 10x and averages; the noise here is what makes
// those repeats (and the 95% confidence bands of Figures 1-4) meaningful.

#include "support/rng.hpp"
#include "support/units.hpp"

namespace lcp::power {

/// Multiplicative Gaussian noise on runtime and power readings.
struct NoiseModel {
  double runtime_sigma = 0.010;  ///< OS jitter, scheduling
  double power_sigma = 0.015;    ///< RAPL quantization, background load

  /// Clamp factor keeping pathological draws physical.
  double max_abs_z = 4.0;

  [[nodiscard]] Seconds perturb_runtime(Seconds t, Rng& rng) const noexcept;
  [[nodiscard]] Watts perturb_power(Watts p, Rng& rng) const noexcept;

  /// Noise-free model (for deterministic tests).
  [[nodiscard]] static NoiseModel none() noexcept { return {0.0, 0.0, 4.0}; }
};

}  // namespace lcp::power
