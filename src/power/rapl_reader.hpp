#pragma once
// Optional reader for the real Intel RAPL interface via
// /sys/class/powercap/intel-rapl:*/energy_uj. On machines where the paper's
// measurement path is actually available (bare metal, root), studies can
// use hardware energy instead of the simulated counter; everywhere else
// this reports kUnavailable and the simulation substitutes (DESIGN.md).

#include <string>

#include "support/status.hpp"
#include "support/units.hpp"

namespace lcp::power {

/// Snapshot of one RAPL package domain.
struct RaplSample {
  Joules energy;       ///< counter value converted from microjoules
  std::string domain;  ///< e.g. "package-0"
};

class RaplReader {
 public:
  /// Probes for a readable package domain; `root` overrides the sysfs base
  /// for tests.
  explicit RaplReader(std::string root = "/sys/class/powercap");

  /// True if a readable energy_uj file was found.
  [[nodiscard]] bool available() const noexcept { return !energy_path_.empty(); }

  /// Reads the current counter. Fails with kUnavailable if not available().
  [[nodiscard]] Expected<RaplSample> read() const;

 private:
  std::string energy_path_;
  std::string domain_;
};

}  // namespace lcp::power
