#include "power/energy_counter.hpp"

#include <cmath>

#include "support/status.hpp"

namespace lcp::power {

void EnergyCounter::add(Joules e) {
  LCP_REQUIRE(e.joules() >= 0.0, "energy additions must be non-negative");
  accum_uj_ += static_cast<std::uint64_t>(std::llround(e.joules() * 1e6));
}

}  // namespace lcp::power
