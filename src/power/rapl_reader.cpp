#include "power/rapl_reader.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace lcp::power {
namespace {

namespace fs = std::filesystem;

/// Reads a small text file fully; empty optional on failure.
bool read_text(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[256];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  out.assign(buf, n);
  return n > 0;
}

}  // namespace

RaplReader::RaplReader(std::string root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return;
  }
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) {
      return;
    }
    const auto name = entry.path().filename().string();
    if (name.rfind("intel-rapl:", 0) != 0) {
      continue;
    }
    const auto energy = entry.path() / "energy_uj";
    std::string text;
    if (read_text(energy.string(), text)) {
      energy_path_ = energy.string();
      std::string domain_text;
      if (read_text((entry.path() / "name").string(), domain_text)) {
        // trim trailing newline
        while (!domain_text.empty() &&
               (domain_text.back() == '\n' || domain_text.back() == '\r')) {
          domain_text.pop_back();
        }
        domain_ = domain_text;
      } else {
        domain_ = name;
      }
      return;
    }
  }
}

Expected<RaplSample> RaplReader::read() const {
  if (!available()) {
    return Status::unavailable(
        "no readable intel-rapl energy_uj domain (expected in containers; "
        "the simulated EnergyCounter substitutes)");
  }
  std::string text;
  if (!read_text(energy_path_, text)) {
    return Status::unavailable("rapl counter became unreadable: " +
                               energy_path_);
  }
  RaplSample sample;
  sample.energy = Joules{std::strtod(text.c_str(), nullptr) * 1e-6};
  sample.domain = domain_;
  return sample;
}

}  // namespace lcp::power
