#pragma once
// Voltage/frequency curve of a chip: the root cause of the paper's
// "critical power slope". Below a chip-specific point the part runs at its
// minimum stable voltage (power grows only linearly with f); approaching
// f_max the required voltage rises as a power law, and P ~ V^2 f produces
// the sharp knee seen in Figures 1 and 3.

#include "support/units.hpp"

namespace lcp::power {

/// V(f) = max(v_min, v_max * (f / f_max)^gamma).
class VoltageCurve {
 public:
  VoltageCurve(Volts v_min, Volts v_max, GigaHertz f_max, double gamma) noexcept;

  [[nodiscard]] Volts at(GigaHertz f) const noexcept;

  [[nodiscard]] Volts v_min() const noexcept { return v_min_; }
  [[nodiscard]] Volts v_max() const noexcept { return v_max_; }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }

  /// Frequency below which the curve is clamped at v_min.
  [[nodiscard]] GigaHertz clamp_frequency() const noexcept;

 private:
  Volts v_min_;
  Volts v_max_;
  GigaHertz f_max_;
  double gamma_;
};

}  // namespace lcp::power
