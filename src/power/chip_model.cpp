#include "power/chip_model.hpp"

#include "support/status.hpp"

namespace lcp::power {
namespace {

// Calibration targets (see DESIGN.md "expected shape agreement"):
//  - scaled power floor P(f_min)/P(f_max) ~ 0.80 at full activity;
//  - Broadwell voltage rises gradually (gamma ~1.8, fitted power-law
//    exponent in the mid single digits);
//  - Skylake stays near v_min until close to f_max (gamma ~8.5, very large
//    fitted exponent), reproducing the paper's f^23-class fit and the
//    narrower Skylake power range.
const ChipSpec kBroadwell = {
    ChipId::kBroadwellD1548,
    "Xeon D-1548",
    "m510",
    "Broadwell",
    GigaHertz{0.8},
    GigaHertz{2.0},
    GigaHertz::from_mhz(50),
    Watts{45.0},
    VoltageCurve{Volts{0.65}, Volts{1.00}, GigaHertz{2.0}, 1.8},
    Watts{9.0},
    1.426,
    0.85,   // older core, lower single-thread throughput
    4.9,    // NFS write path cost, cycles per byte
};

const ChipSpec kSkylake = {
    ChipId::kSkylake4114,
    "Xeon Silver 4114",
    "c220g5",
    "Skylake",
    GigaHertz{0.8},
    GigaHertz{2.2},
    GigaHertz::from_mhz(50),
    Watts{85.0},
    VoltageCurve{Volts{0.70}, Volts{1.05}, GigaHertz{2.2}, 8.5},
    Watts{16.0},
    2.067,
    1.0,
    3.5,
};

}  // namespace

const ChipSpec& chip(ChipId id) {
  switch (id) {
    case ChipId::kBroadwellD1548:
      return kBroadwell;
    case ChipId::kSkylake4114:
      return kSkylake;
  }
  LCP_REQUIRE(false, "unknown chip id");
  return kBroadwell;
}

const std::vector<ChipId>& all_chips() {
  static const std::vector<ChipId> ids = {ChipId::kBroadwellD1548,
                                          ChipId::kSkylake4114};
  return ids;
}

const char* chip_series_name(ChipId id) noexcept {
  switch (id) {
    case ChipId::kBroadwellD1548:
      return "Broadwell";
    case ChipId::kSkylake4114:
      return "Skylake";
  }
  return "?";
}

Watts package_power(const ChipSpec& spec, GigaHertz f, double activity) noexcept {
  const double v = spec.vf.at(f).volts();
  const double dynamic = spec.dyn_coeff * v * v * f.ghz() * activity;
  return spec.static_power + Watts{dynamic};
}

}  // namespace lcp::power
