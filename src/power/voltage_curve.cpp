#include "power/voltage_curve.hpp"

#include <algorithm>
#include <cmath>

#include "support/status.hpp"

namespace lcp::power {

VoltageCurve::VoltageCurve(Volts v_min, Volts v_max, GigaHertz f_max,
                           double gamma) noexcept
    : v_min_(v_min), v_max_(v_max), f_max_(f_max), gamma_(gamma) {
  LCP_REQUIRE(v_min.volts() > 0 && v_max.volts() >= v_min.volts(),
              "voltage curve endpoints invalid");
  LCP_REQUIRE(f_max.ghz() > 0 && gamma > 0, "voltage curve shape invalid");
}

Volts VoltageCurve::at(GigaHertz f) const noexcept {
  const double ratio = std::max(0.0, f.ghz() / f_max_.ghz());
  const double scaled = v_max_.volts() * std::pow(ratio, gamma_);
  return Volts{std::max(v_min_.volts(), scaled)};
}

GigaHertz VoltageCurve::clamp_frequency() const noexcept {
  // v_max * (f/f_max)^gamma = v_min  =>  f = f_max * (v_min/v_max)^(1/gamma)
  const double ratio = std::pow(v_min_.volts() / v_max_.volts(), 1.0 / gamma_);
  return GigaHertz{f_max_.ghz() * ratio};
}

}  // namespace lcp::power
