#pragma once
// Uncore frequency scaling extension (the direction of the paper's ref
// [11], Corbalan et al.'s EAR): Intel server parts expose a second DVFS
// domain — the uncore (LLC, ring/mesh, memory controllers) — whose clock
// trades memory-bound runtime against a large slice of "static" package
// power. The paper tunes only the core clock; this module models the
// second knob and the combined (core, uncore) operating-point search.

#include "power/chip_model.hpp"
#include "power/workload.hpp"
#include "support/units.hpp"

namespace lcp::power {

/// Uncore domain parameters for one chip.
struct UncoreSpec {
  GigaHertz f_min;
  GigaHertz f_max;
  GigaHertz f_step;
  /// Fraction of the chip's static_power that is actually the uncore
  /// running at f_max (reduced when the uncore is clocked down).
  double share_of_static = 0.5;
  /// Of the uncore's share, the part that scales with its clock (the rest
  /// is leakage that no clock setting removes).
  double dynamic_fraction = 0.6;
  /// Sensitivity of memory-stall time to the uncore clock: stall time
  /// scales by (f_max / f)^sensitivity for the workload's stall share.
  double stall_sensitivity = 0.8;
};

/// Uncore registry for the two paper chips.
[[nodiscard]] const UncoreSpec& uncore(ChipId id);

/// Package power with both domains explicit: the core model of
/// package_power() plus the uncore share rescaled by its clock.
[[nodiscard]] Watts package_power_uncore(const ChipSpec& spec,
                                         const UncoreSpec& unc,
                                         GigaHertz f_core, GigaHertz f_uncore,
                                         double activity) noexcept;

/// Runtime with the uncore knob: the workload's stall share stretches as
/// the uncore slows; the core-scaled share is unchanged.
[[nodiscard]] Seconds workload_runtime_uncore(const Workload& w,
                                              const ChipSpec& spec,
                                              const UncoreSpec& unc,
                                              GigaHertz f_core,
                                              GigaHertz f_uncore) noexcept;

[[nodiscard]] Watts workload_power_uncore(const Workload& w,
                                          const ChipSpec& spec,
                                          const UncoreSpec& unc,
                                          GigaHertz f_core,
                                          GigaHertz f_uncore) noexcept;

[[nodiscard]] Joules workload_energy_uncore(const Workload& w,
                                            const ChipSpec& spec,
                                            const UncoreSpec& unc,
                                            GigaHertz f_core,
                                            GigaHertz f_uncore) noexcept;

/// A (core, uncore) frequency pair.
struct OperatingPoint {
  GigaHertz core;
  GigaHertz uncore;
};

/// Exhaustive grid search for the minimum-energy (core, uncore) pair.
[[nodiscard]] OperatingPoint energy_optimal_operating_point(
    const Workload& w, const ChipSpec& spec, const UncoreSpec& unc);

}  // namespace lcp::power
