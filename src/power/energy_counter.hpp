#pragma once
// RAPL-style monotonic energy counter. Mirrors the semantics of the
// energy-pkg MSR that `perf stat` samples: an accumulator read before and
// after a region of interest, with wraparound handled by the reader.

#include <cstdint>

#include "support/units.hpp"

namespace lcp::power {

/// Monotonic microjoule accumulator with 32-bit wraparound (as the real
/// RAPL MSR has) to force correct delta arithmetic in consumers.
class EnergyCounter {
 public:
  /// Adds energy to the counter. Negative additions are a contract error.
  void add(Joules e);

  /// Raw counter value in microjoules, modulo 2^32 like the hardware MSR.
  [[nodiscard]] std::uint32_t raw_microjoules() const noexcept {
    return static_cast<std::uint32_t>(accum_uj_);
  }

  /// Total accumulated energy (no wraparound; for verification).
  [[nodiscard]] Joules total() const noexcept {
    return Joules{static_cast<double>(accum_uj_) * 1e-6};
  }

  /// Delta between two raw readings, wraparound-corrected.
  [[nodiscard]] static Joules delta(std::uint32_t before,
                                    std::uint32_t after) noexcept {
    const std::uint32_t diff = after - before;  // mod 2^32
    return Joules{static_cast<double>(diff) * 1e-6};
  }

 private:
  std::uint64_t accum_uj_ = 0;
};

}  // namespace lcp::power
