#pragma once
// Parameterized package power models of the two CloudLab node types the
// paper measures (Table II). Substitution note (DESIGN.md): parameters are
// calibrated so the *scaled* characteristics match the paper's observed
// ranges — power floor ~0.80 under compute load, critical-power-slope knee
// near f_max, Skylake's knee later and sharper than Broadwell's.

#include <string>
#include <vector>

#include "power/voltage_curve.hpp"
#include "support/units.hpp"

namespace lcp::power {

/// Which chip a study runs on.
enum class ChipId : std::uint8_t { kBroadwellD1548 = 0, kSkylake4114 = 1 };

/// Static description + power parameters of one chip.
struct ChipSpec {
  ChipId id;
  std::string cpu_name;       ///< "Xeon D-1548"
  std::string cloudlab_node;  ///< "m510"
  std::string series;         ///< "Broadwell"
  GigaHertz f_min;
  GigaHertz f_max;
  GigaHertz f_step;           ///< 50 MHz DVFS granularity (Section III-B)
  Watts tdp;

  // Package power model: P(f, u) = static + k_dyn * V(f)^2 * f * u.
  VoltageCurve vf;
  Watts static_power;         ///< uncore + idle cores + DRAM share
  double dyn_coeff;           ///< k_dyn in W / (V^2 * GHz)

  // Performance model.
  double perf_factor;         ///< effective single-core IPC vs reference host
  double transit_cycles_per_byte;  ///< NFS client write-path CPU cost

  /// P-state transition latency (voltage ramp + PLL relock). Intel server
  /// parts land in the 20-70 us range; it bounds the cost of the per-stage
  /// frequency switches in Eqn 3 plans.
  Seconds dvfs_transition_latency{50e-6};
};

/// Registry of the two paper chips.
[[nodiscard]] const ChipSpec& chip(ChipId id);

/// Both chips in paper order {Broadwell, Skylake}.
[[nodiscard]] const std::vector<ChipId>& all_chips();

[[nodiscard]] const char* chip_series_name(ChipId id) noexcept;

/// Package power at frequency `f` with dynamic activity factor `u` (0..1).
[[nodiscard]] Watts package_power(const ChipSpec& spec, GigaHertz f,
                                  double activity) noexcept;

}  // namespace lcp::power
