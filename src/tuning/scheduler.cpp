#include "tuning/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "dvfs/frequency_range.hpp"

namespace lcp::tuning {
namespace {

/// Per-job view of the DVFS grid with cached time/energy.
struct JobGrid {
  std::vector<GigaHertz> freq;
  std::vector<double> runtime_s;
  std::vector<double> energy_j;
  std::size_t chosen = 0;  // index into freq
};

JobGrid build_grid(const power::ChipSpec& spec, const power::Workload& w) {
  const dvfs::FrequencyRange range{spec.f_min, spec.f_max, spec.f_step};
  JobGrid grid;
  for (GigaHertz f : range.steps()) {
    grid.freq.push_back(f);
    grid.runtime_s.push_back(power::workload_runtime(w, spec, f).seconds());
    grid.energy_j.push_back(power::workload_energy(w, spec, f).joules());
  }
  return grid;
}

Schedule materialize(const power::ChipSpec& spec, const std::vector<Job>& jobs,
                     const std::vector<JobGrid>& grids) {
  Schedule schedule;
  double total_t = 0.0;
  double total_e = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobGrid& grid = grids[j];
    ScheduledJob sj;
    sj.job = jobs[j];
    sj.frequency = grid.freq[grid.chosen];
    sj.runtime = Seconds{grid.runtime_s[grid.chosen]};
    sj.energy = Joules{grid.energy_j[grid.chosen]};
    total_t += sj.runtime.seconds();
    total_e += sj.energy.joules();
    schedule.jobs.push_back(std::move(sj));
  }
  (void)spec;
  schedule.total_runtime = Seconds{total_t};
  schedule.total_energy = Joules{total_e};
  return schedule;
}

}  // namespace

Schedule schedule_baseline(const power::ChipSpec& spec,
                           const std::vector<Job>& jobs) {
  std::vector<JobGrid> grids;
  grids.reserve(jobs.size());
  for (const Job& job : jobs) {
    JobGrid grid = build_grid(spec, job.workload);
    grid.chosen = grid.freq.size() - 1;  // f_max
    grids.push_back(std::move(grid));
  }
  return materialize(spec, jobs, grids);
}

Expected<Schedule> schedule_for_deadline(const power::ChipSpec& spec,
                                         const std::vector<Job>& jobs,
                                         Seconds deadline) {
  if (jobs.empty()) {
    return Status::invalid_argument("schedule: no jobs");
  }
  std::vector<JobGrid> grids;
  grids.reserve(jobs.size());
  double total_t = 0.0;
  double fastest_t = 0.0;
  for (const Job& job : jobs) {
    JobGrid grid = build_grid(spec, job.workload);
    // Start at the energy-optimal point.
    grid.chosen = static_cast<std::size_t>(
        std::min_element(grid.energy_j.begin(), grid.energy_j.end()) -
        grid.energy_j.begin());
    total_t += grid.runtime_s[grid.chosen];
    fastest_t += grid.runtime_s.back();
    grids.push_back(std::move(grid));
  }
  if (fastest_t > deadline.seconds() * (1.0 + 1e-12)) {
    return Status::invalid_argument(
        "schedule: deadline infeasible even at f_max");
  }

  // Buy back runtime at the cheapest marginal energy per second saved.
  while (total_t > deadline.seconds()) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_job = jobs.size();
    for (std::size_t j = 0; j < grids.size(); ++j) {
      JobGrid& grid = grids[j];
      if (grid.chosen + 1 >= grid.freq.size()) {
        continue;
      }
      const double dt =
          grid.runtime_s[grid.chosen] - grid.runtime_s[grid.chosen + 1];
      if (dt <= 0.0) {
        continue;  // no runtime gained (floor-bound job): skip this step
      }
      const double de =
          grid.energy_j[grid.chosen + 1] - grid.energy_j[grid.chosen];
      const double cost = de / dt;  // joules per saved second
      if (cost < best_cost) {
        best_cost = cost;
        best_job = j;
      }
    }
    if (best_job == jobs.size()) {
      // Only floor-bound steps remain: advance any job with headroom so the
      // loop terminates (its runtime is unchanged but frequency rises).
      bool advanced = false;
      for (auto& grid : grids) {
        if (grid.chosen + 1 < grid.freq.size()) {
          ++grid.chosen;
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        return Status::internal("schedule: no moves left before deadline met");
      }
      continue;
    }
    JobGrid& grid = grids[best_job];
    total_t -= grid.runtime_s[grid.chosen] - grid.runtime_s[grid.chosen + 1];
    ++grid.chosen;
  }
  return materialize(spec, jobs, grids);
}

Expected<Schedule> schedule_for_power_cap(const power::ChipSpec& spec,
                                          const std::vector<Job>& jobs,
                                          Watts cap) {
  if (jobs.empty()) {
    return Status::invalid_argument("schedule: no jobs");
  }
  std::vector<JobGrid> grids;
  grids.reserve(jobs.size());
  for (const Job& job : jobs) {
    JobGrid grid = build_grid(spec, job.workload);
    bool feasible = false;
    for (std::size_t i = grid.freq.size(); i-- > 0;) {
      const Watts p =
          power::workload_power(job.workload, spec, grid.freq[i]);
      if (p <= cap) {
        grid.chosen = i;
        feasible = true;
        break;
      }
    }
    if (!feasible) {
      return Status::invalid_argument("schedule: power cap infeasible for '" +
                                      job.name + "' even at f_min");
    }
    grids.push_back(std::move(grid));
  }
  return materialize(spec, jobs, grids);
}

}  // namespace lcp::tuning
