#include "tuning/optimizer.hpp"

namespace lcp::tuning {
namespace {

template <typename Metric>
GigaHertz argmin_over_grid(const power::ChipSpec& spec, Metric metric) {
  const dvfs::FrequencyRange range{spec.f_min, spec.f_max, spec.f_step};
  GigaHertz best = spec.f_max;
  double best_value = metric(spec.f_max);
  for (GigaHertz f : range.steps()) {
    const double v = metric(f);
    if (v < best_value) {
      best_value = v;
      best = f;
    }
  }
  return best;
}

}  // namespace

SavingsReport evaluate_tuning(const power::ChipSpec& spec,
                              const power::Workload& workload,
                              GigaHertz f_base, GigaHertz f_tuned) {
  SavingsReport r;
  r.f_base = f_base;
  r.f_tuned = f_tuned;
  r.power_base = power::workload_power(workload, spec, f_base);
  r.power_tuned = power::workload_power(workload, spec, f_tuned);
  r.runtime_base = power::workload_runtime(workload, spec, f_base);
  r.runtime_tuned = power::workload_runtime(workload, spec, f_tuned);
  r.energy_base = power::workload_energy(workload, spec, f_base);
  r.energy_tuned = power::workload_energy(workload, spec, f_tuned);
  return r;
}

GigaHertz energy_optimal_frequency(const power::ChipSpec& spec,
                                   const power::Workload& workload) {
  return argmin_over_grid(spec, [&](GigaHertz f) {
    return power::workload_energy(workload, spec, f).joules();
  });
}

GigaHertz power_optimal_frequency(const power::ChipSpec& spec,
                                  const power::Workload& workload) {
  return argmin_over_grid(spec, [&](GigaHertz f) {
    return power::workload_power(workload, spec, f).watts();
  });
}

GigaHertz runtime_optimal_frequency(const power::ChipSpec& spec,
                                    const power::Workload& workload) {
  return argmin_over_grid(spec, [&](GigaHertz f) {
    return power::workload_runtime(workload, spec, f).seconds();
  });
}

}  // namespace lcp::tuning
