#pragma once
// Tuning evaluation: given a workload on a chip, quantify what a frequency
// change does to power, runtime and energy — the numbers behind the
// paper's 19.4%/11.2%/14.3% headline claims — and search the DVFS grid for
// the true energy-optimal point (the ablation of Eqn 3's fixed fractions).

#include "dvfs/frequency_range.hpp"
#include "power/chip_model.hpp"
#include "power/workload.hpp"
#include "support/units.hpp"

namespace lcp::tuning {

/// Effect of moving one workload from f_base to f_tuned.
struct SavingsReport {
  GigaHertz f_base;
  GigaHertz f_tuned;
  Watts power_base;
  Watts power_tuned;
  Seconds runtime_base;
  Seconds runtime_tuned;
  Joules energy_base;
  Joules energy_tuned;

  /// 1 - P_tuned / P_base.
  [[nodiscard]] double power_savings() const noexcept {
    return 1.0 - power_tuned / power_base;
  }
  /// t_tuned / t_base - 1.
  [[nodiscard]] double runtime_increase() const noexcept {
    return runtime_tuned / runtime_base - 1.0;
  }
  /// 1 - E_tuned / E_base.
  [[nodiscard]] double energy_savings() const noexcept {
    return 1.0 - energy_tuned / energy_base;
  }
};

/// Noise-free model evaluation of a retune (analysis, not measurement).
[[nodiscard]] SavingsReport evaluate_tuning(const power::ChipSpec& spec,
                                            const power::Workload& workload,
                                            GigaHertz f_base,
                                            GigaHertz f_tuned);

/// DVFS grid point minimizing modeled energy for this workload.
[[nodiscard]] GigaHertz energy_optimal_frequency(const power::ChipSpec& spec,
                                                 const power::Workload& workload);

/// DVFS grid point minimizing modeled average power (always f_min for
/// monotone chips; exposed to make that explicit, per Section V-A.1).
[[nodiscard]] GigaHertz power_optimal_frequency(const power::ChipSpec& spec,
                                                const power::Workload& workload);

/// DVFS grid point minimizing runtime (always f_max; Section V-A.2).
[[nodiscard]] GigaHertz runtime_optimal_frequency(const power::ChipSpec& spec,
                                                  const power::Workload& workload);

}  // namespace lcp::tuning
