#pragma once
// Eqn 3's compute/transit crossover, re-derived from a measured codec cost
// profile instead of a fixed constant.
//
// A dump of B bytes can ship raw at the rule's transit frequency, or
// compress first (at the rule's compression frequency) and ship B * ratio
// bytes. The raw plan's energy falls as link bandwidth grows (the wire
// floor shrinks over the full B); the compressed plan adds a fixed compute
// term but its wire floor shrinks over only B * ratio. The two curves
// cross at one bandwidth B*: below it compression saves energy, above it
// the link is fast enough that shipping raw wins.
//
// The codec cost profile is where the SIMD kernels enter the planner: a
// faster codec (higher native throughput at the same ratio) shrinks the
// compute term, moving B* upward — the planner keeps compressing on links
// where the scalar-kernel profile would already have switched to raw.
// bench/micro_hotpaths measures both dispatch levels' profiles and
// re-derives B* for each; tests/tuning/codec_choice_test pins the
// monotonicity (faster codec => larger B*) and the decision flip between
// the two profiles' crossovers.

#include <string>

#include "io/transit_model.hpp"
#include "power/chip_model.hpp"
#include "power/workload.hpp"
#include "tuning/rule.hpp"

namespace lcp::tuning {

/// Measured cost profile of one codec configuration (typically one SIMD
/// dispatch level of one codec).
struct CodecCostProfile {
  std::string name;                   ///< e.g. "sz/avx2"
  double gigabytes_per_second = 1.0;  ///< native compression throughput
  double ratio = 0.5;                 ///< compressed bytes / input bytes
  double cpu_fraction = 0.875;        ///< share of compress time scaling ~1/f
  double activity = 0.98;             ///< package activity while compressing
};

/// A B-byte dump priced both ways under the tuning rule.
struct CodecDecision {
  bool compress = false;  ///< compressed dump costs less energy
  Joules energy_raw{0.0};
  Joules energy_compressed{0.0};

  [[nodiscard]] Joules energy_saved() const noexcept {
    return energy_raw - energy_compressed;
  }
};

/// Prices shipping `dump_bytes` raw versus compress-then-ship on `spec`
/// through `transit`, each stage at its Eqn 3 frequency.
[[nodiscard]] CodecDecision compress_or_raw(
    const power::ChipSpec& spec, const CodecCostProfile& codec,
    Bytes dump_bytes, const io::TransitModelConfig& transit,
    const TuningRule& rule);

/// The crossover bandwidth B* in Gbit/s: the link speed at which raw and
/// compressed dumps cost equal energy, located by geometric bisection of
/// transit.link.gigabits_per_second over [0.01, 1000]. Returns the upper
/// bound when compression wins everywhere in range and the lower bound
/// when it never wins.
[[nodiscard]] double crossover_bandwidth_gbps(
    const power::ChipSpec& spec, const CodecCostProfile& codec,
    Bytes dump_bytes, io::TransitModelConfig transit, const TuningRule& rule);

}  // namespace lcp::tuning
