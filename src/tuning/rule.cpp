#include "tuning/rule.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace lcp::tuning {

TuningRule paper_rule() noexcept { return TuningRule{0.875, 0.85}; }

double derive_fraction(const model::PowerLawFit& fit, GigaHertz f_max,
                       double beta, double weight, double min_fraction) {
  LCP_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
  const double p_base = fit.evaluate(f_max);
  double best_fraction = 1.0;
  double best_score = 0.0;
  // Walk the fraction grid at the DVFS granularity (50 MHz on a ~2 GHz
  // part is ~2.5%; a 0.5% grid over-resolves slightly, harmlessly).
  for (double x = 1.0; x >= min_fraction; x -= 0.005) {
    const double p = fit.evaluate(f_max * x);
    const double power_savings = 1.0 - p / p_base;
    const double runtime_increase = beta * (1.0 / x - 1.0);
    const double score = power_savings - weight * runtime_increase;
    if (score > best_score) {
      best_score = score;
      best_fraction = x;
    }
  }
  return best_fraction;
}

TuningRule derive_rule(const model::PowerLawFit& compression_fit,
                       const model::PowerLawFit& transit_fit, GigaHertz f_max,
                       double compression_beta, double transit_beta) {
  TuningRule rule;
  rule.compression_fraction =
      derive_fraction(compression_fit, f_max, compression_beta);
  rule.transit_fraction = derive_fraction(transit_fit, f_max, transit_beta);
  return rule;
}

}  // namespace lcp::tuning
