#pragma once
// Piecewise I/O plan: the paper's two-stage view of a data dump
// (compress at 0.875 f_max, then write at 0.85 f_max), generalized to any
// list of (workload, frequency) stages. Produces per-stage and total
// energy/runtime for a baseline clock vs the tuned plan.

#include <string>
#include <vector>

#include "power/chip_model.hpp"
#include "power/workload.hpp"
#include "tuning/optimizer.hpp"
#include "tuning/rule.hpp"

namespace lcp::tuning {

/// One stage of an I/O pipeline.
struct IoStage {
  std::string name;          ///< "compress", "write"
  power::Workload workload;
  GigaHertz frequency;       ///< frequency the plan runs this stage at
};

/// A fully-specified plan.
struct IoPlan {
  std::vector<IoStage> stages;

  [[nodiscard]] Seconds total_runtime(const power::ChipSpec& spec) const;
  [[nodiscard]] Joules total_energy(const power::ChipSpec& spec) const;

  /// Overhead of the frequency switches between consecutive stages that
  /// run at different clocks (the cost Eqn 3's piecewise plan implicitly
  /// assumes away — and which is indeed negligible; see the tests). The
  /// core stalls at static power during each transition.
  [[nodiscard]] Seconds transition_time(const power::ChipSpec& spec) const;
  [[nodiscard]] Joules transition_energy(const power::ChipSpec& spec) const;
};

/// Comparison of a tuned plan against the same stages at a base clock.
struct PlanComparison {
  IoPlan base;
  IoPlan tuned;
  Joules energy_base;
  Joules energy_tuned;
  Seconds runtime_base;
  Seconds runtime_tuned;

  [[nodiscard]] double energy_savings() const noexcept {
    return 1.0 - energy_tuned / energy_base;
  }
  [[nodiscard]] double runtime_increase() const noexcept {
    return runtime_tuned / runtime_base - 1.0;
  }
  [[nodiscard]] Joules energy_saved() const noexcept {
    return energy_base - energy_tuned;
  }
};

/// Builds the two-stage compressed-dump plan under `rule` and compares it
/// against running both stages at the chip's max clock.
[[nodiscard]] PlanComparison plan_compressed_dump(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& write_workload, const TuningRule& rule);

/// The same tuned dump evaluated on a clean and on a faulty link: the
/// write stage is swapped for its retry-degraded workload (see
/// io::transit_workload's TransitRetryProfile overload). Quantifies how
/// much package energy the retries/backoff burn and whether the paper's
/// tuning rule still pays off once the link is lossy.
struct DegradedDumpPlan {
  PlanComparison clean;
  PlanComparison degraded;

  /// Extra energy the faults cost the tuned plan.
  [[nodiscard]] Joules fault_energy_overhead() const noexcept {
    return degraded.energy_tuned - clean.energy_tuned;
  }
  [[nodiscard]] Seconds fault_runtime_overhead() const noexcept {
    return degraded.runtime_tuned - clean.runtime_tuned;
  }
};

[[nodiscard]] DegradedDumpPlan plan_compressed_dump_under_faults(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& clean_write_workload,
    const power::Workload& degraded_write_workload, const TuningRule& rule);

// --- Overlapped (streaming) dump -------------------------------------------
//
// The serial two-stage plan compresses everything, then writes everything:
// t = tc + tt. The streaming dump engine (core/streaming_dump.hpp)
// pipelines the stages over S slabs — slab i's framed bytes are on the
// wire while slab i+1 is still compressing — so the makespan contracts to
//
//   t_overlap = max(tc, tt) + min(tc, tt) / S
//
// (the min/S term is the exposed pipeline fill/drain: the wire idles while
// the first slab compresses, and the last slab's write has nothing left to
// hide behind). Energy credits the overlap through the static-power term
// only: each stage's dynamic work is unchanged, but the package is powered
// for time_saved fewer seconds:
//
//   E_overlap = Ec + Et - P_static * (tc + tt - t_overlap).
//
// Depth 1 degenerates to the serial plan exactly (no overlap credited) —
// the identity the dump experiment asserts when streaming is off.

/// The overlapped pipeline evaluated at one clock and depth.
struct OverlapOutcome {
  GigaHertz frequency;
  std::size_t pipeline_depth = 1;
  Seconds runtime{0.0};         ///< overlapped makespan
  Seconds serial_runtime{0.0};  ///< tc + tt at the same clock
  Joules energy{0.0};
  Joules serial_energy{0.0};    ///< Ec + Et at the same clock

  /// Runtime the overlap hides relative to the serial schedule.
  [[nodiscard]] Seconds overlap_saved() const noexcept {
    return serial_runtime - runtime;
  }
};

[[nodiscard]] OverlapOutcome overlapped_dump_outcome(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& write_workload, GigaHertz frequency,
    std::size_t pipeline_depth);

/// Streaming counterpart of plan_compressed_dump. The fused pipeline runs
/// one clock (both stages are live at once, and a core has one frequency),
/// so `tuned` picks whichever of the rule's two stage frequencies costs
/// less energy at this depth; `base` is the pipeline at f_max. `serial`
/// carries the classic two-stage comparison for reference.
struct OverlapPlan {
  std::size_t pipeline_depth = 1;
  OverlapOutcome base;    ///< overlapped at f_max
  OverlapOutcome tuned;   ///< overlapped at the chosen rule frequency
  PlanComparison serial;  ///< the non-streaming plan, same workloads

  [[nodiscard]] Joules energy_saved() const noexcept {
    return base.energy - tuned.energy;
  }
  [[nodiscard]] double energy_savings() const noexcept {
    return 1.0 - tuned.energy / base.energy;
  }
};

[[nodiscard]] OverlapPlan plan_overlapped_dump(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& write_workload, const TuningRule& rule,
    std::size_t pipeline_depth);

// --- Incremental (delta) dump ----------------------------------------------
//
// The replicated incremental checkpoint store (core/incremental_checkpoint)
// compresses and ships only the slabs whose content hash changed since the
// parent generation, then fans the written bytes out to R replicas. Both
// effects are linear reweightings of the classic two-stage dump:
//
//   E_inc(d, R) = E_compress * d + E_write * d * R  (+ hash + journal)
//
// where d is the fraction of slabs dirty this generation. Scaling a
// workload by k scales both its CPU term and its pipeline floor, so
// max(k*t_cpu, k*floor) = k * max(t_cpu, floor): runtime and energy scale
// exactly linearly and d = 1, R = 1 degenerates to plan_compressed_dump
// bit-for-bit (the hash/journal overhead terms default to zero workloads,
// which contribute no stage at all).

/// Returns `w` with its CPU work, stall and pipeline-floor terms scaled by
/// `factor` (the activity factor is a ratio and does not scale). A factor
/// of exactly 1.0 returns `w` unchanged — the bit-for-bit degeneracy the
/// incremental plan's d = 1 identity relies on.
[[nodiscard]] power::Workload scale_workload(const power::Workload& w,
                                             double factor) noexcept;

/// Expected fraction of slabs dirtied when the application touches
/// `touched_fraction` of the field's elements in contiguous runs of mean
/// length `mean_run_elements`, and the store dirties whole slabs of
/// `chunk_elements`. Each run of r elements straddles on average
/// 1 + r/chunk slabs, so slab granularity amplifies the write set by
/// (1 + chunk/run); the result is clamped to [0, 1].
[[nodiscard]] double dirty_slab_fraction(double touched_fraction,
                                         std::size_t chunk_elements,
                                         std::size_t mean_run_elements) noexcept;

/// Shape of one incremental dump generation.
struct IncrementalDumpSpec {
  /// Fraction of slabs whose content changed since the parent generation.
  double dirty_fraction = 1.0;
  /// Replication factor R: every written byte goes to R replicas.
  std::size_t replicas = 1;
  /// Cost of hashing every raw slab for dirty detection (paid on the full
  /// field every dump, independent of d). Zero workload = no stage.
  power::Workload hash_workload;
  /// Cost of rewriting the manifest journal (paid once per dump, scaled
  /// by R like any other written byte). Zero workload = no stage.
  power::Workload journal_workload;
};

/// The incremental dump priced against the full dump it replaces.
struct IncrementalDumpPlan {
  IncrementalDumpSpec spec;
  /// The incremental dump: hash + d-scaled compress + d*R-scaled write +
  /// R-scaled journal, base clock vs tuned rule.
  PlanComparison plan;
  /// Reference full dump (d = 1, R = 1, no overhead terms).
  PlanComparison full_dump;

  /// Tuned-plan energy the delta dump saves over a full dump.
  [[nodiscard]] Joules energy_saved_vs_full() const noexcept {
    return full_dump.energy_tuned - plan.energy_tuned;
  }
};

/// Builds the incremental-dump plan. `compress_workload` and
/// `write_workload` describe the FULL field (they are scaled internally).
/// With spec.dirty_fraction = 1, spec.replicas = 1 and zero overhead
/// workloads, `plan` equals plan_compressed_dump on the same inputs
/// bit-for-bit.
[[nodiscard]] IncrementalDumpPlan plan_incremental_dump(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& write_workload, const TuningRule& rule,
    const IncrementalDumpSpec& inc);

// --- Resilient-framing chunk-size trade-off --------------------------------
//
// A framed dump (compress/common/framing.hpp) splits the stream into
// c-byte chunks with h bytes of per-chunk header. Under an independent
// per-byte corruption rate p, a chunk survives with probability
// (1-p)^(c+h): small chunks lose less data per hit but pay h/c overhead
// on every stored/moved byte. These helpers price that trade-off so the
// tuning layer can pick a chunk size the same way it picks a frequency.

/// Probability that one whole chunk (payload + header) survives an
/// independent per-byte corruption rate `byte_loss_rate`. Clamped to
/// [0, 1]; rate <= 0 yields 1, rate >= 1 yields 0.
[[nodiscard]] double frame_survival_fraction(std::size_t chunk_bytes,
                                             double byte_loss_rate,
                                             std::size_t per_chunk_overhead_bytes);

/// One evaluated chunk size of the trade-off curve.
struct FramingTradeoff {
  std::size_t chunk_bytes = 0;
  /// Frame bytes per payload byte (h/c): the extra storage/transit energy.
  double overhead_fraction = 0.0;
  /// Expected fraction of payload bytes recoverable after corruption.
  double expected_recovered_fraction = 0.0;
};

[[nodiscard]] FramingTradeoff evaluate_chunk_size(
    std::size_t chunk_bytes, double byte_loss_rate,
    std::size_t per_chunk_overhead_bytes);

/// Chunk size minimizing expected loss + overhead cost per payload byte:
/// c* = sqrt(h / -ln(1 - p)), clamped to [256 B, 256 MiB]. Rate <= 0 (a
/// clean link) returns the max clamp, rate >= 1 the min.
[[nodiscard]] std::size_t recommended_chunk_bytes(
    double byte_loss_rate, std::size_t per_chunk_overhead_bytes = 16);

}  // namespace lcp::tuning
