#include "tuning/codec_choice.hpp"

#include <cmath>

namespace lcp::tuning {

CodecDecision compress_or_raw(const power::ChipSpec& spec,
                              const CodecCostProfile& codec, Bytes dump_bytes,
                              const io::TransitModelConfig& transit,
                              const TuningRule& rule) {
  const GigaHertz f_write = rule.transit_frequency(spec.f_max);
  const GigaHertz f_comp = rule.compression_frequency(spec.f_max);

  CodecDecision decision;
  const auto raw_write = io::transit_workload(spec, dump_bytes, transit);
  decision.energy_raw = power::workload_energy(raw_write, spec, f_write);

  const double native_seconds =
      dump_bytes.gb() / codec.gigabytes_per_second;
  const auto compress = power::compression_workload(
      spec, Seconds{native_seconds}, codec.cpu_fraction, codec.activity);
  const auto shipped = Bytes{static_cast<std::uint64_t>(
      static_cast<double>(dump_bytes.bytes()) * codec.ratio)};
  const auto compressed_write = io::transit_workload(spec, shipped, transit);
  decision.energy_compressed =
      power::workload_energy(compress, spec, f_comp) +
      power::workload_energy(compressed_write, spec, f_write);

  decision.compress = decision.energy_compressed < decision.energy_raw;
  return decision;
}

double crossover_bandwidth_gbps(const power::ChipSpec& spec,
                                const CodecCostProfile& codec,
                                Bytes dump_bytes,
                                io::TransitModelConfig transit,
                                const TuningRule& rule) {
  const auto compression_wins = [&](double gbps) {
    transit.link.gigabits_per_second = gbps;
    return compress_or_raw(spec, codec, dump_bytes, transit, rule).compress;
  };
  double lo = 0.01;
  double hi = 1000.0;
  if (!compression_wins(lo)) {
    return lo;  // raw wins even on the slowest link in range
  }
  if (compression_wins(hi)) {
    return hi;  // compression wins across the whole range
  }
  // The energy gap is monotone in bandwidth (the raw plan's wire floor
  // shrinks over B bytes, the compressed plan's over B * ratio < B), so
  // the sign changes exactly once. Geometric steps: the range spans five
  // decades.
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = std::sqrt(lo * hi);
    if (compression_wins(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

}  // namespace lcp::tuning
