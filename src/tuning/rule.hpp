#pragma once
// The paper's frequency-tuning recommendation (Eqn 3):
//   f_IO = 0.875 * f_max  during lossy compression
//          0.85  * f_max  during data writing
// plus machinery to derive such a rule from fitted power models instead of
// hard-coding it.

#include "model/power_law.hpp"
#include "support/units.hpp"

namespace lcp::tuning {

/// A piecewise frequency rule for the two I/O stages.
struct TuningRule {
  double compression_fraction = 0.875;  ///< of f_max, Eqn 3 first row
  double transit_fraction = 0.85;       ///< of f_max, Eqn 3 second row

  [[nodiscard]] GigaHertz compression_frequency(GigaHertz f_max) const noexcept {
    return f_max * compression_fraction;
  }
  [[nodiscard]] GigaHertz transit_frequency(GigaHertz f_max) const noexcept {
    return f_max * transit_fraction;
  }
};

/// Eqn 3 as published.
[[nodiscard]] TuningRule paper_rule() noexcept;

/// Derives a stage fraction from a fitted scaled-power model: picks the
/// f/f_max maximizing (power savings) - weight * (runtime increase), where
/// runtime increase follows the cpu-bound fraction `beta` of the stage.
/// This is the paper's "where power is minimized and runtime is minimized"
/// trade-off made explicit.
[[nodiscard]] double derive_fraction(const model::PowerLawFit& fit,
                                     GigaHertz f_max, double beta,
                                     double weight = 1.0,
                                     double min_fraction = 0.5);

/// Builds a full rule from compression + transit fits.
[[nodiscard]] TuningRule derive_rule(const model::PowerLawFit& compression_fit,
                                     const model::PowerLawFit& transit_fit,
                                     GigaHertz f_max, double compression_beta,
                                     double transit_beta);

}  // namespace lcp::tuning
