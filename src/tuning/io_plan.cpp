#include "tuning/io_plan.hpp"

namespace lcp::tuning {

Seconds IoPlan::total_runtime(const power::ChipSpec& spec) const {
  Seconds total{0.0};
  for (const auto& stage : stages) {
    total = total + power::workload_runtime(stage.workload, spec, stage.frequency);
  }
  return total;
}

Joules IoPlan::total_energy(const power::ChipSpec& spec) const {
  Joules total{0.0};
  for (const auto& stage : stages) {
    total = total + power::workload_energy(stage.workload, spec, stage.frequency);
  }
  return total;
}

Seconds IoPlan::transition_time(const power::ChipSpec& spec) const {
  std::size_t switches = 0;
  for (std::size_t i = 1; i < stages.size(); ++i) {
    if (stages[i].frequency != stages[i - 1].frequency) {
      ++switches;
    }
  }
  return spec.dvfs_transition_latency * static_cast<double>(switches);
}

Joules IoPlan::transition_energy(const power::ChipSpec& spec) const {
  return spec.static_power * transition_time(spec);
}

PlanComparison plan_compressed_dump(const power::ChipSpec& spec,
                                    const power::Workload& compress_workload,
                                    const power::Workload& write_workload,
                                    const TuningRule& rule) {
  PlanComparison cmp;
  cmp.base.stages = {
      {"compress", compress_workload, spec.f_max},
      {"write", write_workload, spec.f_max},
  };
  cmp.tuned.stages = {
      {"compress", compress_workload, rule.compression_frequency(spec.f_max)},
      {"write", write_workload, rule.transit_frequency(spec.f_max)},
  };
  cmp.energy_base = cmp.base.total_energy(spec);
  cmp.energy_tuned = cmp.tuned.total_energy(spec);
  cmp.runtime_base = cmp.base.total_runtime(spec);
  cmp.runtime_tuned = cmp.tuned.total_runtime(spec);
  return cmp;
}

DegradedDumpPlan plan_compressed_dump_under_faults(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& clean_write_workload,
    const power::Workload& degraded_write_workload, const TuningRule& rule) {
  DegradedDumpPlan plan;
  plan.clean =
      plan_compressed_dump(spec, compress_workload, clean_write_workload, rule);
  plan.degraded = plan_compressed_dump(spec, compress_workload,
                                       degraded_write_workload, rule);
  return plan;
}

}  // namespace lcp::tuning
