#include "tuning/io_plan.hpp"

#include <algorithm>
#include <cmath>

namespace lcp::tuning {

Seconds IoPlan::total_runtime(const power::ChipSpec& spec) const {
  Seconds total{0.0};
  for (const auto& stage : stages) {
    total = total + power::workload_runtime(stage.workload, spec, stage.frequency);
  }
  return total;
}

Joules IoPlan::total_energy(const power::ChipSpec& spec) const {
  Joules total{0.0};
  for (const auto& stage : stages) {
    total = total + power::workload_energy(stage.workload, spec, stage.frequency);
  }
  return total;
}

Seconds IoPlan::transition_time(const power::ChipSpec& spec) const {
  std::size_t switches = 0;
  for (std::size_t i = 1; i < stages.size(); ++i) {
    if (stages[i].frequency != stages[i - 1].frequency) {
      ++switches;
    }
  }
  return spec.dvfs_transition_latency * static_cast<double>(switches);
}

Joules IoPlan::transition_energy(const power::ChipSpec& spec) const {
  return spec.static_power * transition_time(spec);
}

PlanComparison plan_compressed_dump(const power::ChipSpec& spec,
                                    const power::Workload& compress_workload,
                                    const power::Workload& write_workload,
                                    const TuningRule& rule) {
  PlanComparison cmp;
  cmp.base.stages = {
      {"compress", compress_workload, spec.f_max},
      {"write", write_workload, spec.f_max},
  };
  cmp.tuned.stages = {
      {"compress", compress_workload, rule.compression_frequency(spec.f_max)},
      {"write", write_workload, rule.transit_frequency(spec.f_max)},
  };
  cmp.energy_base = cmp.base.total_energy(spec);
  cmp.energy_tuned = cmp.tuned.total_energy(spec);
  cmp.runtime_base = cmp.base.total_runtime(spec);
  cmp.runtime_tuned = cmp.tuned.total_runtime(spec);
  return cmp;
}

DegradedDumpPlan plan_compressed_dump_under_faults(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& clean_write_workload,
    const power::Workload& degraded_write_workload, const TuningRule& rule) {
  DegradedDumpPlan plan;
  plan.clean =
      plan_compressed_dump(spec, compress_workload, clean_write_workload, rule);
  plan.degraded = plan_compressed_dump(spec, compress_workload,
                                       degraded_write_workload, rule);
  return plan;
}

OverlapOutcome overlapped_dump_outcome(const power::ChipSpec& spec,
                                       const power::Workload& compress_workload,
                                       const power::Workload& write_workload,
                                       GigaHertz frequency,
                                       std::size_t pipeline_depth) {
  const double depth =
      static_cast<double>(std::max<std::size_t>(1, pipeline_depth));
  const double tc =
      power::workload_runtime(compress_workload, spec, frequency).seconds();
  const double tt =
      power::workload_runtime(write_workload, spec, frequency).seconds();

  OverlapOutcome o;
  o.frequency = frequency;
  o.pipeline_depth = std::max<std::size_t>(1, pipeline_depth);
  o.serial_runtime = Seconds{tc + tt};
  o.runtime = Seconds{std::max(tc, tt) + std::min(tc, tt) / depth};
  o.serial_energy =
      power::workload_energy(compress_workload, spec, frequency) +
      power::workload_energy(write_workload, spec, frequency);
  o.energy = Joules{o.serial_energy.joules() -
                    spec.static_power.watts() * o.overlap_saved().seconds()};
  return o;
}

OverlapPlan plan_overlapped_dump(const power::ChipSpec& spec,
                                 const power::Workload& compress_workload,
                                 const power::Workload& write_workload,
                                 const TuningRule& rule,
                                 std::size_t pipeline_depth) {
  OverlapPlan plan;
  plan.pipeline_depth = std::max<std::size_t>(1, pipeline_depth);
  plan.serial =
      plan_compressed_dump(spec, compress_workload, write_workload, rule);
  plan.base = overlapped_dump_outcome(spec, compress_workload, write_workload,
                                      spec.f_max, plan.pipeline_depth);
  const OverlapOutcome at_fc = overlapped_dump_outcome(
      spec, compress_workload, write_workload,
      rule.compression_frequency(spec.f_max), plan.pipeline_depth);
  const OverlapOutcome at_ft = overlapped_dump_outcome(
      spec, compress_workload, write_workload,
      rule.transit_frequency(spec.f_max), plan.pipeline_depth);
  plan.tuned = at_fc.energy.joules() <= at_ft.energy.joules() ? at_fc : at_ft;
  return plan;
}

power::Workload scale_workload(const power::Workload& w,
                               double factor) noexcept {
  if (factor == 1.0) {
    // Exact identity, not a multiply-by-one: the d = 1 incremental plan
    // must reproduce plan_compressed_dump bit-for-bit.
    return w;
  }
  power::Workload scaled = w;
  scaled.cpu_ghz_seconds = w.cpu_ghz_seconds * factor;
  scaled.stall_seconds = Seconds{w.stall_seconds.seconds() * factor};
  scaled.floor_seconds = Seconds{w.floor_seconds.seconds() * factor};
  return scaled;
}

double dirty_slab_fraction(double touched_fraction,
                           std::size_t chunk_elements,
                           std::size_t mean_run_elements) noexcept {
  if (touched_fraction <= 0.0 || chunk_elements == 0 ||
      mean_run_elements == 0) {
    return touched_fraction <= 0.0 ? 0.0 : 1.0;
  }
  const double amplification = 1.0 + static_cast<double>(chunk_elements) /
                                         static_cast<double>(mean_run_elements);
  return std::min(1.0, touched_fraction * amplification);
}

namespace {

bool is_zero_workload(const power::Workload& w) noexcept {
  return w.cpu_ghz_seconds == 0.0 && w.stall_seconds.seconds() == 0.0 &&
         w.floor_seconds.seconds() == 0.0;
}

}  // namespace

IncrementalDumpPlan plan_incremental_dump(
    const power::ChipSpec& spec, const power::Workload& compress_workload,
    const power::Workload& write_workload, const TuningRule& rule,
    const IncrementalDumpSpec& inc) {
  IncrementalDumpPlan plan;
  plan.spec = inc;
  plan.full_dump =
      plan_compressed_dump(spec, compress_workload, write_workload, rule);

  const double d = std::clamp(inc.dirty_fraction, 0.0, 1.0);
  const double r = static_cast<double>(std::max<std::size_t>(1, inc.replicas));
  const power::Workload inc_compress = scale_workload(compress_workload, d);
  const power::Workload inc_write = scale_workload(write_workload, d * r);
  // Overhead stages are appended only when non-zero, so the degenerate
  // spec contributes exactly the two stages plan_compressed_dump builds.
  const GigaHertz fc = rule.compression_frequency(spec.f_max);
  const GigaHertz ft = rule.transit_frequency(spec.f_max);

  PlanComparison& cmp = plan.plan;
  if (!is_zero_workload(inc.hash_workload)) {
    // Dirty detection hashes every raw slab, dirty or not: the cost of
    // knowing d is paid on the whole field, every generation.
    cmp.base.stages.push_back({"hash", inc.hash_workload, spec.f_max});
    cmp.tuned.stages.push_back({"hash", inc.hash_workload, fc});
  }
  cmp.base.stages.push_back({"compress", inc_compress, spec.f_max});
  cmp.base.stages.push_back({"write", inc_write, spec.f_max});
  cmp.tuned.stages.push_back({"compress", inc_compress, fc});
  cmp.tuned.stages.push_back({"write", inc_write, ft});
  if (!is_zero_workload(inc.journal_workload)) {
    const power::Workload journal = scale_workload(inc.journal_workload, r);
    cmp.base.stages.push_back({"journal", journal, spec.f_max});
    cmp.tuned.stages.push_back({"journal", journal, ft});
  }
  cmp.energy_base = cmp.base.total_energy(spec);
  cmp.energy_tuned = cmp.tuned.total_energy(spec);
  cmp.runtime_base = cmp.base.total_runtime(spec);
  cmp.runtime_tuned = cmp.tuned.total_runtime(spec);
  return plan;
}

double frame_survival_fraction(std::size_t chunk_bytes, double byte_loss_rate,
                               std::size_t per_chunk_overhead_bytes) {
  if (byte_loss_rate <= 0.0) {
    return 1.0;
  }
  if (byte_loss_rate >= 1.0) {
    return 0.0;
  }
  const double exposed =
      static_cast<double>(chunk_bytes + per_chunk_overhead_bytes);
  return std::pow(1.0 - byte_loss_rate, exposed);
}

FramingTradeoff evaluate_chunk_size(std::size_t chunk_bytes,
                                    double byte_loss_rate,
                                    std::size_t per_chunk_overhead_bytes) {
  LCP_REQUIRE(chunk_bytes > 0, "chunk size must be positive");
  FramingTradeoff t;
  t.chunk_bytes = chunk_bytes;
  t.overhead_fraction = static_cast<double>(per_chunk_overhead_bytes) /
                        static_cast<double>(chunk_bytes);
  t.expected_recovered_fraction = frame_survival_fraction(
      chunk_bytes, byte_loss_rate, per_chunk_overhead_bytes);
  return t;
}

std::size_t recommended_chunk_bytes(double byte_loss_rate,
                                    std::size_t per_chunk_overhead_bytes) {
  constexpr std::size_t kMinChunk = 256;
  constexpr std::size_t kMaxChunk = std::size_t{256} << 20;
  if (byte_loss_rate <= 0.0) {
    return kMaxChunk;  // clean link: amortize the headers away
  }
  if (byte_loss_rate >= 1.0) {
    return kMinChunk;  // everything dies anyway; bound the blast radius
  }
  // Cost per payload byte ~ h/c (overhead) + c * -ln(1-p) (expected loss);
  // d/dc = 0 at c* = sqrt(h / -ln(1-p)).
  const double per_byte_loss = -std::log1p(-byte_loss_rate);
  const double optimum =
      std::sqrt(static_cast<double>(per_chunk_overhead_bytes) / per_byte_loss);
  const double clamped =
      std::clamp(optimum, static_cast<double>(kMinChunk),
                 static_cast<double>(kMaxChunk));
  return static_cast<std::size_t>(clamped);
}

}  // namespace lcp::tuning
