#pragma once
// Energy-aware I/O scheduler: generalizes the paper's per-stage Eqn 3 rule
// to a set of jobs with a global constraint. Given the jobs of an I/O
// window (compressions, writes) on one chip, pick a DVFS point per job to
//   - minimize total energy subject to a wall-clock deadline
//     (discrete marginal-cost greedy over the frequency grid), or
//   - run each job as fast as the package power cap allows.
// This is the "per-CPU, per-workload tuning" the paper's conclusion points
// toward as future work.

#include <string>
#include <vector>

#include "power/chip_model.hpp"
#include "power/workload.hpp"
#include "support/status.hpp"

namespace lcp::tuning {

/// A job to schedule.
struct Job {
  std::string name;
  power::Workload workload;
};

/// A job with its chosen frequency.
struct ScheduledJob {
  Job job;
  GigaHertz frequency;
  Seconds runtime;
  Joules energy;
};

/// A complete schedule.
struct Schedule {
  std::vector<ScheduledJob> jobs;
  Seconds total_runtime;
  Joules total_energy;
};

/// All jobs at the max clock — the paper's "Base Clock" reference.
[[nodiscard]] Schedule schedule_baseline(const power::ChipSpec& spec,
                                         const std::vector<Job>& jobs);

/// Minimum-energy schedule whose total runtime is within `deadline`.
/// Starts every job at its energy-optimal grid point and buys runtime back
/// at the cheapest marginal energy cost. Fails with kInvalidArgument if
/// even all-jobs-at-f_max misses the deadline.
[[nodiscard]] Expected<Schedule> schedule_for_deadline(
    const power::ChipSpec& spec, const std::vector<Job>& jobs,
    Seconds deadline);

/// Fastest schedule whose modeled per-job package power stays under `cap`.
/// Fails with kInvalidArgument if some job exceeds the cap even at f_min.
[[nodiscard]] Expected<Schedule> schedule_for_power_cap(
    const power::ChipSpec& spec, const std::vector<Job>& jobs, Watts cap);

}  // namespace lcp::tuning
