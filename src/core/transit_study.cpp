#include "core/transit_study.hpp"

namespace lcp::core {

Expected<TransitStudyResult> run_transit_study(const TransitStudyConfig& config) {
  TransitStudyConfig cfg = config;
  if (cfg.sizes.empty()) {
    cfg.sizes = io::paper_transit_sizes();
  }
  if (cfg.chips.empty()) {
    cfg.chips = power::all_chips();
  }
  for (Bytes n : cfg.sizes) {
    if (n.bytes() == 0) {
      return Status::invalid_argument("transit sizes must be positive");
    }
  }

  TransitStudyResult result;
  std::uint64_t stream = 0;
  for (power::ChipId chip : cfg.chips) {
    Platform platform{chip, cfg.noise, cfg.seed ^ 0x7261u ^ stream};
    for (Bytes size : cfg.sizes) {
      const auto workload =
          io::transit_workload(platform.spec(), size, cfg.transit);
      TransitSeries series;
      series.chip = chip;
      series.size = size;
      series.sweep = frequency_sweep(platform, workload, cfg.repeats);
      result.series.push_back(std::move(series));
      ++stream;
    }
  }
  return result;
}

}  // namespace lcp::core
