#include "core/transit_study.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "io/nfs_client.hpp"

namespace lcp::core {

Expected<TransitStudyResult> run_transit_study(const TransitStudyConfig& config) {
  TransitStudyConfig cfg = config;
  if (cfg.sizes.empty()) {
    cfg.sizes = io::paper_transit_sizes();
  }
  if (cfg.chips.empty()) {
    cfg.chips = power::all_chips();
  }
  for (Bytes n : cfg.sizes) {
    if (n.bytes() == 0) {
      return Status::invalid_argument("transit sizes must be positive");
    }
  }
  if (cfg.fault.enabled && cfg.fault.probe_chunk_bytes == 0) {
    return Status::invalid_argument("probe chunk size must be positive");
  }

  // The fault probe moves real bytes through one shared server/client so
  // the chunk-index stream is global across the study: fault episodes can
  // target "chunks 40..80 of this run" and hit a predictable point.
  std::optional<io::FaultInjector> injector;
  std::optional<io::NfsServer> server;
  std::optional<io::NfsClient> client;
  std::vector<std::uint8_t> probe;
  if (cfg.fault.enabled) {
    injector.emplace(cfg.fault.plan);
    server.emplace(cfg.transit.disk);
    io::NfsClientConfig client_cfg;
    client_cfg.link = cfg.transit.link;
    client_cfg.rpc_chunk_bytes = cfg.fault.probe_chunk_bytes;
    client_cfg.retry = cfg.fault.retry;
    client.emplace(*server, client_cfg);
    client->attach_fault_injector(&*injector);

    std::uint64_t max_probe = 0;
    const std::uint64_t cap =
        cfg.fault.probe_chunks * cfg.fault.probe_chunk_bytes;
    for (Bytes n : cfg.sizes) {
      max_probe = std::max(max_probe, std::min(n.bytes(), cap));
    }
    probe.resize(max_probe);
    for (std::uint64_t i = 0; i < max_probe; ++i) {
      probe[i] = static_cast<std::uint8_t>(i * 131 + 17);
    }
  }

  TransitStudyResult result;
  std::uint64_t stream = 0;
  for (power::ChipId chip : cfg.chips) {
    Platform platform{chip, cfg.noise, cfg.seed ^ 0x7261u ^ stream};
    for (Bytes size : cfg.sizes) {
      TransitSeries series;
      series.chip = chip;
      series.size = size;

      if (cfg.fault.enabled) {
        const std::uint64_t probe_bytes =
            std::min(size.bytes(),
                     cfg.fault.probe_chunks * cfg.fault.probe_chunk_bytes);
        const std::string path = "probe/" + std::string(power::chip_series_name(chip)) +
                                 "/" + std::to_string(size.bytes()) + "@" +
                                 std::to_string(stream);
        client->reset_counters();
        const Status st = client->write_file(
            path, std::span<const std::uint8_t>{probe.data(),
                                                static_cast<std::size_t>(probe_bytes)});
        if (!st.is_ok()) {
          series.status = st;
          result.series.push_back(std::move(series));
          ++stream;
          continue;
        }
        series.retry = io::retry_profile_from_stats(
            client->retry_stats(), Bytes{probe_bytes}, size);
      }

      const auto workload =
          cfg.fault.enabled
              ? io::transit_workload(platform.spec(), size, cfg.transit,
                                     series.retry)
              : io::transit_workload(platform.spec(), size, cfg.transit);
      series.sweep = frequency_sweep(platform, workload, cfg.repeats);
      result.series.push_back(std::move(series));
      ++stream;
    }
  }
  return result;
}

}  // namespace lcp::core
