#include "core/incremental_checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string_view>
#include <utility>

#include "compress/common/container.hpp"
#include "compress/common/framing.hpp"
#include "compress/common/registry.hpp"
#include "support/bytestream.hpp"
#include "support/checksum.hpp"

namespace lcp::core {
namespace {

// Journal stream layout: chunk 0 is a header record naming the journal
// epoch and the live generation list; chunks 1..n are generation entries.
// Entries are merged across replicas BY GENERATION NUMBER, never by chunk
// position: a rewrite (append or drop) shifts positions, and a replica
// that slept through it would otherwise present CRC-valid chunks that
// "disagree" with fresh ones. The epoch makes freshness explicit — the
// highest epoch among readable copies names the live generation set, and
// any replica's intact copy of an immutable entry can serve it.
constexpr std::uint32_t kJournalHeaderMagic = 0x484A434CU;  // "LCJH"
constexpr std::uint32_t kJournalEntryMagic = 0x4A50434CU;   // "LCPJ"
constexpr std::uint8_t kJournalVersion = 1;

struct JournalHeader {
  std::uint64_t epoch = 0;
  std::uint64_t next_generation = 1;  ///< never reused, survives drops
  std::vector<std::uint64_t> generations;
};

std::vector<std::uint8_t> build_header(const JournalHeader& h) {
  ByteWriter w;
  w.write_u32(kJournalHeaderMagic);
  w.write_u8(kJournalVersion);
  w.write_u64(h.epoch);
  w.write_u64(h.next_generation);
  w.write_u32(static_cast<std::uint32_t>(h.generations.size()));
  for (std::uint64_t g : h.generations) {
    w.write_u64(g);
  }
  return w.finish();
}

Expected<JournalHeader> parse_header(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto magic = r.read_u32();
  if (!magic || *magic != kJournalHeaderMagic) {
    return Status::corrupt_data("bad journal header magic");
  }
  auto version = r.read_u8();
  if (!version || *version != kJournalVersion) {
    return Status::unsupported("unknown journal version");
  }
  JournalHeader h;
  auto epoch = r.read_u64();
  if (!epoch) {
    return epoch.status().with_context("journal epoch");
  }
  h.epoch = *epoch;
  auto next_generation = r.read_u64();
  if (!next_generation || *next_generation == 0) {
    return Status::corrupt_data("journal next generation invalid");
  }
  h.next_generation = *next_generation;
  auto count = r.read_u32();
  if (!count || *count > compress::kMaxFrameChunks) {
    return Status::corrupt_data("journal generation count invalid");
  }
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto g = r.read_u64();
    if (!g || *g == 0 || *g <= prev) {
      return Status::corrupt_data("journal generation list not increasing");
    }
    prev = *g;
    h.generations.push_back(*g);
  }
  if (h.next_generation <= prev) {
    return Status::corrupt_data(
        "journal next generation not above live generations");
  }
  if (r.remaining() != 0) {
    return Status::corrupt_data("journal header has trailing bytes");
  }
  return h;
}

std::vector<std::uint8_t> build_entry(const GenerationEntry& e) {
  ByteWriter w;
  w.write_u32(kJournalEntryMagic);
  w.write_u8(kJournalVersion);
  w.write_u64(e.generation);
  w.write_u64(e.parent);
  w.write_string(e.codec);
  w.write_u8(static_cast<std::uint8_t>(e.bound.mode));
  w.write_f64(e.bound.value);
  w.write_u8(static_cast<std::uint8_t>(e.dims.rank()));
  for (std::size_t extent : e.dims.extents()) {
    w.write_u64(extent);
  }
  w.write_string(e.field_name);
  w.write_u64(e.chunk_elements);
  w.write_u32(e.dirty_slabs);
  w.write_u32(static_cast<std::uint32_t>(e.slabs.size()));
  for (const SlabRecord& s : e.slabs) {
    w.write_u64(s.raw_hash);
    w.write_u64(s.stored_hash);
    w.write_u64(s.stored_bytes);
  }
  return w.finish();
}

Expected<GenerationEntry> parse_entry(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto magic = r.read_u32();
  if (!magic || *magic != kJournalEntryMagic) {
    return Status::corrupt_data("bad journal entry magic");
  }
  auto version = r.read_u8();
  if (!version || *version != kJournalVersion) {
    return Status::unsupported("unknown journal entry version");
  }
  GenerationEntry e;
  auto generation = r.read_u64();
  if (!generation || *generation == 0) {
    return Status::corrupt_data("journal entry generation invalid");
  }
  e.generation = *generation;
  auto parent = r.read_u64();
  if (!parent || *parent >= e.generation) {
    return Status::corrupt_data("journal entry parent invalid");
  }
  e.parent = *parent;
  auto codec = r.read_string();
  if (!codec) {
    return codec.status().with_context("journal entry codec");
  }
  e.codec = std::move(*codec);
  auto mode = r.read_u8();
  if (!mode || *mode > static_cast<std::uint8_t>(
                           compress::BoundMode::kPointwiseRelative)) {
    return Status::corrupt_data("journal entry bound mode invalid");
  }
  auto value = r.read_f64();
  if (!value) {
    return value.status().with_context("journal entry bound");
  }
  e.bound =
      compress::ErrorBound{static_cast<compress::BoundMode>(*mode), *value};
  auto rank = r.read_u8();
  if (!rank || *rank == 0 || *rank > 4) {
    return Status::corrupt_data("journal entry rank out of range");
  }
  std::vector<std::size_t> extents;
  std::uint64_t elements = 1;
  for (std::uint8_t i = 0; i < *rank; ++i) {
    auto extent = r.read_u64();
    if (!extent || *extent == 0) {
      return Status::corrupt_data("journal entry extent invalid");
    }
    if (*extent > compress::kMaxContainerElements ||
        elements > compress::kMaxContainerElements / *extent) {
      return Status::corrupt_data("journal entry dims exceed element limit");
    }
    elements *= *extent;
    extents.push_back(static_cast<std::size_t>(*extent));
  }
  e.dims = data::Dims{std::move(extents)};
  auto name = r.read_string();
  if (!name) {
    return name.status().with_context("journal entry field name");
  }
  e.field_name = std::move(*name);
  auto chunk_elements = r.read_u64();
  if (!chunk_elements || *chunk_elements == 0) {
    return Status::corrupt_data("journal entry chunk_elements invalid");
  }
  e.chunk_elements = *chunk_elements;
  auto dirty = r.read_u32();
  if (!dirty) {
    return dirty.status().with_context("journal entry dirty count");
  }
  e.dirty_slabs = *dirty;
  auto slab_count = r.read_u32();
  if (!slab_count) {
    return slab_count.status().with_context("journal entry slab count");
  }
  const std::uint64_t expected_slabs =
      (elements + e.chunk_elements - 1) / e.chunk_elements;
  if (*slab_count != expected_slabs || e.dirty_slabs > *slab_count) {
    return Status::corrupt_data(
        "journal entry slab count inconsistent with dims");
  }
  e.slabs.reserve(*slab_count);
  for (std::uint32_t i = 0; i < *slab_count; ++i) {
    SlabRecord s;
    auto raw = r.read_u64();
    auto stored = r.read_u64();
    auto size = r.read_u64();
    if (!raw || !stored || !size || *size == 0) {
      return Status::corrupt_data("journal entry slab record invalid");
    }
    s.raw_hash = *raw;
    s.stored_hash = *stored;
    s.stored_bytes = *size;
    e.slabs.push_back(s);
  }
  if (r.remaining() != 0) {
    return Status::corrupt_data("journal entry has trailing bytes");
  }
  return e;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::optional<std::uint64_t> parse_hex16(std::string_view s) {
  if (s.size() != 16) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::span<const std::uint8_t> slab_raw_bytes(std::span<const float> values,
                                             std::size_t offset,
                                             std::size_t count) {
  return {reinterpret_cast<const std::uint8_t*>(values.data() + offset),
          count * sizeof(float)};
}

bool same_layout(const GenerationEntry& e, const data::Field& field,
                 const compress::CheckpointOptions& options) {
  return e.codec == options.codec && e.bound.mode == options.bound.mode &&
         e.bound.value == options.bound.value && e.dims == field.dims() &&
         e.field_name == field.name() &&
         e.chunk_elements == options.chunk_elements;
}

}  // namespace

std::size_t RestoreReport::recovered_slabs() const noexcept {
  std::size_t count = 0;
  for (const auto& s : slabs) {
    count += s.recovered ? 1 : 0;
  }
  return count;
}

IncrementalCheckpointStore::IncrementalCheckpointStore(
    io::ReplicaSet& replicas, IncrementalStoreOptions options)
    : replicas_(replicas), options_(std::move(options)) {}

std::string IncrementalCheckpointStore::slab_path(
    std::uint64_t stored_hash) const {
  return options_.root + "/slabs/" + hex16(stored_hash);
}

std::string IncrementalCheckpointStore::journal_prefix() const {
  return options_.root + "/journal.";
}

std::string IncrementalCheckpointStore::journal_path(
    std::uint64_t epoch) const {
  return journal_prefix() + hex16(epoch);
}

Status IncrementalCheckpointStore::publish_journal(
    std::vector<GenerationEntry> next, std::uint64_t next_generation,
    Bytes* journal_bytes) {
  const std::uint64_t attempt = epoch_ + 1;
  compress::FrameParams params;
  params.flags = compress::kFrameFlagJournal;
  compress::FramedWriter writer{params};
  JournalHeader header;
  header.epoch = attempt;
  header.next_generation = next_generation;
  for (const GenerationEntry& e : next) {
    header.generations.push_back(e.generation);
  }
  writer.append_chunk(build_header(header));
  for (const GenerationEntry& e : next) {
    writer.append_chunk(build_entry(e));
  }
  const std::vector<std::uint8_t> journal = writer.finish();

  // Every rewrite goes to a NEW epoch-named file: the committed journal
  // is never removed, or even touched, before its replacement is
  // quorum-durable, so there is no window in which a failed write can
  // destroy published state.
  const std::string path = journal_path(attempt);
  const Status st = replicas_.write_file(path, journal).status;
  // Success or failure, the attempted epoch is burnt: a retry writes a
  // strictly higher epoch and can never present a second, different
  // journal under an epoch some replica already holds.
  epoch_ = attempt;
  if (!st.is_ok()) {
    // Roll the sub-quorum copies back best-effort (server-side, so a
    // fault-injected client path cannot block it). A copy that survives
    // anyway is served by the epoch vote without forking, and the slabs
    // it references are already quorum-durable.
    (void)replicas_.remove_file(path);
    return st;
  }
  entries_ = std::move(next);
  next_generation_ = next_generation;
  if (journal_bytes != nullptr) {
    *journal_bytes = Bytes{journal.size()};
  }
  prune_superseded_journals(attempt);
  return Status::ok();
}

void IncrementalCheckpointStore::prune_superseded_journals(
    std::uint64_t keep_epoch) {
  const std::string prefix = journal_prefix();
  for (std::size_t r = 0; r < replicas_.replica_count(); ++r) {
    if (replicas_.replica_down(r)) {
      continue;  // its stale epochs lose the epoch vote until the next prune
    }
    io::NfsServer& server = replicas_.server(r);
    for (const std::string& path : server.list_files(prefix)) {
      const auto epoch =
          parse_hex16(std::string_view{path}.substr(prefix.size()));
      if (epoch.has_value() && *epoch < keep_epoch) {
        (void)server.remove_file(path);  // best-effort; lower epochs are inert
      }
    }
  }
}

Status IncrementalCheckpointStore::put_file(
    const std::string& path, std::span<const std::uint8_t> data) {
  // NfsClient::write_file appends on the fault-free path, so a stale file
  // under the same name must be dropped first; remove_file skips missing
  // and down-replica copies. Safe for slab objects only: they are
  // content-addressed, so any stale same-name copy holds the exact bytes
  // this write carries and committed state cannot be lost.
  auto removed = replicas_.remove_file(path);
  if (!removed.has_value()) {
    return removed.status().with_context("replacing '" + path + "'");
  }
  return replicas_.write_file(path, data).status;
}

void IncrementalCheckpointStore::rebuild_index(
    const std::vector<GenerationEntry>& entries) {
  stored_objects_.clear();
  for (const GenerationEntry& e : entries) {
    for (const SlabRecord& s : e.slabs) {
      stored_objects_.push_back(s.stored_hash);
    }
  }
  std::sort(stored_objects_.begin(), stored_objects_.end());
  stored_objects_.erase(
      std::unique(stored_objects_.begin(), stored_objects_.end()),
      stored_objects_.end());
}

Expected<IncrementalCheckpointStore::JournalView>
IncrementalCheckpointStore::load_journal() const {
  JournalView view;
  const std::string prefix = journal_prefix();
  const std::size_t n = replicas_.replica_count();

  // Every valid framed journal copy, across every replica and every epoch
  // file a replica holds (a replica that slept through prunes may hold
  // several; a stale epoch just loses the vote below).
  struct Copy {
    compress::FrameRecovery frame;
    std::optional<JournalHeader> header;  ///< intact + parsed chunk 0
    std::span<const std::uint8_t> header_bytes;
  };
  std::vector<Copy> copies;
  std::size_t absent = 0;
  std::size_t readable_replicas = 0;
  Status last_error = Status::ok();
  for (std::size_t r = 0; r < n; ++r) {
    if (replicas_.replica_down(r)) {
      view.degraded = true;
      continue;
    }
    const auto files = replicas_.server(r).list_files(prefix);
    if (files.empty()) {
      // A live replica with no journal file at any epoch: one vote that
      // the store never committed a journal.
      ++absent;
      continue;
    }
    bool replica_readable = false;
    for (const std::string& path : files) {
      const auto name_epoch =
          parse_hex16(std::string_view{path}.substr(prefix.size()));
      auto bytes = replicas_.server(r).read_file(path);
      if (!bytes.has_value()) {
        last_error = bytes.status();
        view.degraded = true;
        continue;
      }
      auto frame = compress::recover_framed(*bytes);
      if (!frame.has_value() ||
          (frame->info.flags & compress::kFrameFlagJournal) == 0) {
        last_error = frame.has_value()
                         ? Status::corrupt_data("journal frame flag missing")
                         : frame.status();
        view.degraded = true;
        continue;
      }
      Copy copy;
      copy.frame = std::move(*frame);
      if (!copy.frame.chunks.empty() &&
          copy.frame.chunks.front().state == compress::ChunkState::kIntact) {
        auto header = parse_header(copy.frame.chunks.front().payload);
        if (!header.has_value()) {
          return header.status().with_context("journal header (crc-valid)");
        }
        if (!name_epoch.has_value() || *name_epoch != header->epoch) {
          // The file name is outside the frame CRC; a copy whose path
          // disagrees with its own header is untrustworthy end to end.
          last_error =
              Status::corrupt_data("journal copy epoch disagrees with path");
          view.degraded = true;
          continue;
        }
        copy.header_bytes = copy.frame.chunks.front().payload;
        copy.header = std::move(*header);
      } else {
        view.degraded = true;
      }
      copies.push_back(std::move(copy));
      replica_readable = true;
    }
    if (replica_readable) {
      ++readable_replicas;
    }
  }

  if (readable_replicas == 0) {
    if (last_error.is_ok() && absent >= replicas_.write_quorum()) {
      // At least write_quorum live replicas agree no journal was ever
      // committed: a genuinely fresh store (any committed quorum write
      // would intersect that many observations). Fewer absences prove
      // nothing about what the unreachable replicas hold, so below the
      // threshold the store fails closed instead of restarting at epoch 1
      // and forking whatever the down replicas come back with.
      return view;
    }
    if (!last_error.is_ok()) {
      return Status{last_error.code(),
                    "journal unreadable on every replica: " +
                        last_error.message()};
    }
    return Status::unavailable(
        "journal absent on " + std::to_string(absent) +
        " reachable replicas, need quorum " +
        std::to_string(replicas_.write_quorum()) +
        " absences to call the store fresh");
  }
  if (readable_replicas < replicas_.write_quorum()) {
    // Fail closed below quorum: with fewer readable replicas than the
    // write quorum we cannot rule out every readable copy being stale
    // (R + W > N is what guarantees the freshest epoch is represented).
    return Status::unavailable(
        "journal readable on " + std::to_string(readable_replicas) +
        " replicas, need quorum " + std::to_string(replicas_.write_quorum()));
  }
  if (readable_replicas < n) {
    view.degraded = true;
  }

  // Freshness: the highest epoch among intact headers names the live
  // generation list. Equal-epoch headers must agree byte-for-byte — two
  // CRC-valid headers that disagree are a fork, not random damage.
  bool have_header = false;
  JournalHeader winner;
  std::span<const std::uint8_t> winner_bytes;
  for (const Copy& copy : copies) {
    if (!copy.header.has_value()) {
      continue;
    }
    if (!have_header || copy.header->epoch > winner.epoch) {
      have_header = true;
      winner = *copy.header;
      winner_bytes = copy.header_bytes;
    } else if (copy.header->epoch == winner.epoch) {
      const auto& b = copy.header_bytes;
      if (b.size() != winner_bytes.size() ||
          !std::equal(b.begin(), b.end(), winner_bytes.begin())) {
        return Status::corrupt_data(
            "journal fork: equal-epoch headers disagree");
      }
    }
  }
  if (!have_header) {
    return Status::corrupt_data("journal header lost on every replica");
  }
  view.epoch = winner.epoch;
  view.next_generation = winner.next_generation;

  // Candidate entry bytes per generation, from every copy's intact
  // chunks — stale epochs included: entries are immutable once written
  // (generation numbers are never reused), so any intact copy of a
  // generation may serve it, but all intact copies must agree.
  std::map<std::uint64_t, std::span<const std::uint8_t>> candidates;
  for (const Copy& copy : copies) {
    for (std::size_t c = 1; c < copy.frame.chunks.size(); ++c) {
      const auto& chunk = copy.frame.chunks[c];
      if (chunk.state != compress::ChunkState::kIntact) {
        view.degraded = true;
        continue;
      }
      auto entry = parse_entry(chunk.payload);
      if (!entry.has_value()) {
        return entry.status().with_context("journal entry (crc-valid)");
      }
      auto [it, inserted] =
          candidates.try_emplace(entry->generation, chunk.payload);
      if (!inserted) {
        const auto& prev = it->second;
        if (prev.size() != chunk.payload.size() ||
            !std::equal(prev.begin(), prev.end(), chunk.payload.begin())) {
          return Status::corrupt_data(
              "journal fork: generation " +
              std::to_string(entry->generation) +
              " has disagreeing crc-valid copies");
        }
      }
    }
  }

  for (std::uint64_t g : winner.generations) {
    const auto it = candidates.find(g);
    if (it == candidates.end()) {
      // Every copy of this entry is damaged: the generation is lost, but
      // the journal fails open to the surviving ones (restore of the lost
      // generation reports "not in journal" instead of a silent wrong
      // answer, because its slabs are unreachable without the entry).
      view.degraded = true;
      continue;
    }
    auto entry = parse_entry(it->second);
    if (!entry.has_value()) {
      return entry.status();
    }
    view.entries.push_back(std::move(*entry));
  }
  return view;
}

Status IncrementalCheckpointStore::ensure_loaded_locked() {
  if (loaded_) {
    return Status::ok();
  }
  auto view = load_journal();
  if (!view.has_value()) {
    return view.status();
  }
  entries_ = std::move(view->entries);
  // max(): a failed publish may have burnt epochs (or generation numbers)
  // beyond what the replicas committed; never step back behind them.
  epoch_ = std::max(epoch_, view->epoch);
  next_generation_ = std::max(
      {next_generation_, view->next_generation,
       entries_.empty() ? std::uint64_t{1} : entries_.back().generation + 1});
  rebuild_index(entries_);
  loaded_ = true;
  return Status::ok();
}

Status IncrementalCheckpointStore::open() {
  const WriterLock lock{mu_};
  loaded_ = false;
  const Status st = ensure_loaded_locked();
  if (!st.is_ok()) {
    return st.with_context("incremental store open");
  }
  return Status::ok();
}

Expected<DumpSummary> IncrementalCheckpointStore::dump(
    const data::Field& field) {
  const WriterLock lock{mu_};
  LCP_RETURN_IF_ERROR(ensure_loaded_locked());
  const compress::CheckpointOptions& opts = options_.checkpoint;
  if (field.element_count() == 0) {
    return Status::invalid_argument("incremental dump needs a non-empty field");
  }
  if (opts.chunk_elements == 0) {
    return Status::invalid_argument(
        "incremental dump chunk_elements must be > 0");
  }
  auto codec = compress::make_compressor(opts.codec);
  if (!codec.has_value()) {
    return codec.status().with_context("incremental dump");
  }

  const Bytes wire_before = replicas_.bytes_replicated();
  const std::size_t n = field.element_count();
  const std::size_t slab_count =
      (n + opts.chunk_elements - 1) / opts.chunk_elements;
  const auto values = field.values();

  const GenerationEntry* parent =
      entries_.empty() ? nullptr : &entries_.back();
  const bool parent_comparable =
      parent != nullptr && same_layout(*parent, field, opts) &&
      parent->slabs.size() == slab_count;

  GenerationEntry entry;
  // Generation numbers come from the persisted counter, never from
  // back()+1: after a drop of the newest generation the latter would
  // reuse a number a stale replica may still hold an entry for.
  entry.generation = next_generation_;
  entry.parent = parent == nullptr ? 0 : parent->generation;
  entry.codec = opts.codec;
  entry.bound = opts.bound;
  entry.dims = field.dims();
  entry.field_name = field.name();
  entry.chunk_elements = opts.chunk_elements;
  entry.slabs.reserve(slab_count);

  DumpSummary summary;
  summary.generation = entry.generation;
  summary.slab_count = slab_count;

  for (std::size_t s = 0; s < slab_count; ++s) {
    const std::size_t offset = s * opts.chunk_elements;
    const std::size_t count = std::min(opts.chunk_elements, n - offset);
    const std::uint64_t raw_hash =
        fnv1a64(slab_raw_bytes(values, offset, count));
    if (parent_comparable && parent->slabs[s].raw_hash == raw_hash) {
      entry.slabs.push_back(parent->slabs[s]);
      continue;
    }
    ++summary.dirty_slabs;
    auto compressed = compress::compress_checkpoint_slab(field, opts, s,
                                                         **codec);
    if (!compressed.has_value()) {
      return compressed.status().with_context("incremental dump");
    }
    const std::uint64_t stored_hash = fnv1a64(*compressed);
    const bool already_stored =
        std::binary_search(stored_objects_.begin(), stored_objects_.end(),
                           stored_hash);
    if (!already_stored) {
      const Status st = put_file(slab_path(stored_hash), *compressed);
      if (!st.is_ok()) {
        // Objects written before the failure are orphans until the next
        // gc(); the generation itself is never published, so no reader
        // can observe the partial dump.
        return st.with_context("incremental dump: slab " + std::to_string(s));
      }
      stored_objects_.insert(
          std::lower_bound(stored_objects_.begin(), stored_objects_.end(),
                           stored_hash),
          stored_hash);
      ++summary.written_slabs;
      summary.payload_bytes = summary.payload_bytes + Bytes{compressed->size()};
    }
    entry.slabs.push_back({raw_hash, stored_hash, compressed->size()});
  }
  entry.dirty_slabs = static_cast<std::uint32_t>(summary.dirty_slabs);

  // Publish: the generation exists once the journal write reaches
  // quorum, and not before. A failed publish leaves the committed
  // journal untouched (orphan slab objects wait for the next gc()).
  std::vector<GenerationEntry> next = entries_;
  next.push_back(std::move(entry));
  Bytes journal_bytes{0};
  const Status st =
      publish_journal(std::move(next), summary.generation + 1, &journal_bytes);
  if (!st.is_ok()) {
    return st.with_context("incremental dump: journal");
  }
  summary.journal_bytes = journal_bytes;
  summary.replicated_bytes =
      Bytes{replicas_.bytes_replicated().bytes() - wire_before.bytes()};
  return summary;
}

Expected<RestoreReport> IncrementalCheckpointStore::restore(
    std::uint64_t generation, const compress::RecoveryPolicy& policy) const {
  const ReaderLock lock{mu_};
  auto view = load_journal();
  if (!view.has_value()) {
    return view.status().with_context("incremental restore");
  }
  return restore_from_view(*view, generation, policy);
}

Expected<RestoreReport> IncrementalCheckpointStore::restore_from_view(
    const JournalView& view, std::uint64_t generation,
    const compress::RecoveryPolicy& policy) const {
  const GenerationEntry* entry = nullptr;
  for (const GenerationEntry& e : view.entries) {
    if (e.generation == generation) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    return Status::invalid_argument(
        "generation " + std::to_string(generation) + " not in journal");
  }

  const std::size_t n = entry->dims.element_count();
  const std::size_t count = entry->slabs.size();
  RestoreReport report;
  report.generation = generation;
  report.total_elements = n;
  report.journal_degraded = view.degraded;
  report.slabs.resize(count);
  std::vector<float> out(n, 0.0F);

  for (std::size_t s = 0; s < count; ++s) {
    compress::SlabVerdict& v = report.slabs[s];
    v.chunk_seq = static_cast<std::uint32_t>(s);
    v.element_offset = s * entry->chunk_elements;
    v.element_count =
        std::min<std::size_t>(entry->chunk_elements, n - v.element_offset);
    const std::uint64_t want = entry->slabs[s].stored_hash;
    // Content addressing makes the object self-verifying: a copy whose
    // hash does not match its name is rejected and the read fails over.
    auto fetched = replicas_.read_file(
        slab_path(want), s % replicas_.replica_count(),
        [want](std::span<const std::uint8_t> bytes) {
          if (fnv1a64(bytes) != want) {
            return Status::corrupt_data("slab object hash mismatch");
          }
          return Status::ok();
        });
    if (!fetched.has_value()) {
      v.frame_state = compress::ChunkState::kMissing;
      v.status = fetched.status().with_context("slab " + std::to_string(s));
      report.slab_failovers += replicas_.replica_count();
      report.lost_elements += v.element_count;
      continue;
    }
    report.slab_failovers += fetched->failovers;
    auto decoded = compress::decompress_any(fetched->bytes);
    if (!decoded.has_value()) {
      // Hash-verified bytes that fail to decode mean the stored object
      // was bad at write time; no other replica can do better.
      v.frame_state = compress::ChunkState::kCorrupt;
      v.status = decoded.status().with_context("slab " + std::to_string(s));
      report.lost_elements += v.element_count;
      continue;
    }
    if (decoded->field.element_count() != v.element_count) {
      v.frame_state = compress::ChunkState::kCorrupt;
      v.status = Status::corrupt_data("slab element count mismatch")
                     .with_context("slab " + std::to_string(s));
      report.lost_elements += v.element_count;
      continue;
    }
    const auto slab_values = decoded->field.values();
    std::copy(slab_values.begin(), slab_values.end(),
              out.begin() + static_cast<std::ptrdiff_t>(v.element_offset));
    v.frame_state = compress::ChunkState::kIntact;
    v.status = Status::ok();
    v.recovered = true;
  }

  if (policy.fail_on_any_loss && report.lost_elements > 0) {
    for (const auto& v : report.slabs) {
      if (!v.recovered) {
        return v.status.with_context("incremental restore (strict policy)");
      }
    }
  }
  if (policy.fill == compress::RecoveryFill::kInterpolate &&
      report.lost_elements > 0) {
    std::vector<compress::SlabRegion> regions;
    regions.reserve(count);
    for (const auto& v : report.slabs) {
      regions.push_back({v.element_offset, v.element_count, v.recovered});
    }
    compress::interpolate_lost_regions(out, regions);
  }
  report.field = data::Field{entry->field_name, entry->dims, std::move(out)};
  return report;
}

Expected<RestoreReport> IncrementalCheckpointStore::restore_latest(
    const compress::RecoveryPolicy& policy) const {
  // One shared lock and one journal read cover both the pick and the
  // restore: a drop_generation between them (which needs the exclusive
  // lock) can never turn the chosen generation into "not in journal".
  const ReaderLock lock{mu_};
  auto view = load_journal();
  if (!view.has_value()) {
    return view.status().with_context("incremental restore_latest");
  }
  if (view->entries.empty()) {
    return Status::invalid_argument("journal holds no generations");
  }
  return restore_from_view(*view, view->entries.back().generation, policy);
}

Status IncrementalCheckpointStore::drop_generation(std::uint64_t generation) {
  const WriterLock lock{mu_};
  LCP_RETURN_IF_ERROR(ensure_loaded_locked());
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [generation](const GenerationEntry& e) {
        return e.generation == generation;
      });
  if (it == entries_.end()) {
    return Status::invalid_argument(
        "generation " + std::to_string(generation) + " not in journal");
  }
  std::vector<GenerationEntry> next = entries_;
  next.erase(next.begin() + (it - entries_.begin()));
  // next_generation_ is preserved across the drop: the dropped number is
  // retired forever, not freed for reuse.
  const Status st = publish_journal(std::move(next), next_generation_, nullptr);
  if (!st.is_ok()) {
    return st.with_context("drop_generation");
  }
  // The dropped generation's exclusive objects stay on disk until gc();
  // the index must forget them NOW so a later dump re-writes rather than
  // referencing a file gc() is about to delete.
  rebuild_index(entries_);
  return Status::ok();
}

Expected<GcReport> IncrementalCheckpointStore::gc() {
  const WriterLock lock{mu_};
  LCP_RETURN_IF_ERROR(ensure_loaded_locked());
  rebuild_index(entries_);
  std::set<std::string> live;
  for (std::uint64_t h : stored_objects_) {
    live.insert(slab_path(h));
  }

  GcReport report;
  report.objects_live = live.size();
  const std::string prefix = options_.root + "/slabs/";
  std::set<std::string> removed;
  for (std::size_t r = 0; r < replicas_.replica_count(); ++r) {
    if (replicas_.replica_down(r)) {
      continue;  // stale objects on a down replica wait for the next gc
    }
    // GC is a storage-side administrative walk (REMOVE RPCs carry no
    // payload), so it goes straight to the servers: no bytes land on the
    // replica clients' transit counters.
    io::NfsServer& server = replicas_.server(r);
    for (const std::string& path : server.list_files(prefix)) {
      if (live.contains(path)) {
        continue;
      }
      auto freed = server.remove_file(path);
      if (!freed.has_value()) {
        return freed.status().with_context("gc: " + path);
      }
      report.bytes_freed = report.bytes_freed + Bytes{*freed};
      removed.insert(path);
    }
  }
  report.objects_removed = removed.size();
  return report;
}

std::vector<std::uint64_t> IncrementalCheckpointStore::generations() const {
  const WriterLock lock{mu_};
  std::vector<std::uint64_t> out;
  out.reserve(entries_.size());
  for (const GenerationEntry& e : entries_) {
    out.push_back(e.generation);
  }
  return out;
}

std::uint64_t IncrementalCheckpointStore::latest_generation() const {
  const WriterLock lock{mu_};
  return entries_.empty() ? 0 : entries_.back().generation;
}

}  // namespace lcp::core
