#include "core/fetch_experiment.hpp"

#include "compress/common/framing.hpp"

namespace lcp::core {

Joules FetchResult::mean_energy_saved() const noexcept {
  if (outcomes.empty()) {
    return Joules{0.0};
  }
  double total = 0.0;
  for (const auto& o : outcomes) {
    total += o.plan.energy_saved().joules();
  }
  return Joules{total / static_cast<double>(outcomes.size())};
}

double FetchResult::mean_energy_savings() const noexcept {
  if (outcomes.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& o : outcomes) {
    total += o.plan.energy_savings();
  }
  return total / static_cast<double>(outcomes.size());
}

power::Workload decompress_workload_from_calibration(
    const Calibration& cal, const power::ChipSpec& spec) {
  const CodecProfile profile = codec_profile(cal.codec);
  // Same throughput normalization as the compression side (see
  // workload_from_calibration); decompression skips the prediction search
  // so it is a touch less cpu-bound.
  constexpr double kCodecSpeedNormalization = 0.25;
  return power::compression_workload(
      spec, cal.decompress_seconds * kCodecSpeedNormalization,
      profile.cpu_fraction * 0.95, profile.activity);
}

Expected<FetchResult> run_fetch_experiment(const FetchConfig& config) {
  FetchConfig cfg = config;
  if (cfg.error_bounds.empty()) {
    cfg.error_bounds = compress::paper_error_bounds();
  }
  if (cfg.total_bytes.bytes() == 0) {
    return Status::invalid_argument("fetch experiment needs a positive volume");
  }
  const power::ChipSpec& spec = power::chip(cfg.chip);

  FetchResult result;
  for (double eb : cfg.error_bounds) {
    auto cal = calibrate_codec(cfg.codec, data::DatasetId::kNyx, eb,
                               cfg.scale, cfg.seed);
    if (!cal) {
      return cal.status();
    }
    const double scale_up = static_cast<double>(cfg.total_bytes.bytes()) /
                            static_cast<double>(cal->input_bytes.bytes());
    Calibration full = *cal;
    full.decompress_seconds = cal->decompress_seconds * scale_up;
    full.input_bytes = cfg.total_bytes;

    const Bytes compressed_bytes{static_cast<std::uint64_t>(
        static_cast<double>(cfg.total_bytes.bytes()) /
        cal->compression_ratio)};
    Bytes wire_bytes = compressed_bytes;
    if (cfg.frame_chunk_bytes > 0) {
      wire_bytes =
          Bytes{compressed_bytes.bytes() +
                compress::frame_overhead_bytes(
                    static_cast<std::size_t>(compressed_bytes.bytes()),
                    cfg.frame_chunk_bytes)};
    }
    const auto read_workload =
        io::transit_workload(spec, wire_bytes, cfg.transit);
    const auto decompress_workload =
        decompress_workload_from_calibration(full, spec);

    // Two-stage plan: read at the transit fraction, decompress at the
    // compression fraction (both stages of Eqn 3, applied to the inverse
    // pipeline).
    tuning::PlanComparison cmp;
    cmp.base.stages = {{"read", read_workload, spec.f_max},
                       {"decompress", decompress_workload, spec.f_max}};
    cmp.tuned.stages = {
        {"read", read_workload, cfg.rule.transit_frequency(spec.f_max)},
        {"decompress", decompress_workload,
         cfg.rule.compression_frequency(spec.f_max)}};
    cmp.energy_base = cmp.base.total_energy(spec);
    cmp.energy_tuned = cmp.tuned.total_energy(spec);
    cmp.runtime_base = cmp.base.total_runtime(spec);
    cmp.runtime_tuned = cmp.tuned.total_runtime(spec);

    FetchOutcome outcome;
    outcome.error_bound = eb;
    outcome.compression_ratio = cal->compression_ratio;
    outcome.compressed_bytes = compressed_bytes;
    outcome.framed_bytes = wire_bytes;
    outcome.plan = std::move(cmp);
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace lcp::core
