#include "core/streaming_dump.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "compress/common/framing.hpp"
#include "compress/common/registry.hpp"
#include "support/bounded_queue.hpp"
#include "support/scoped_thread.hpp"
#include "support/thread_annotations.hpp"
#include "support/timer.hpp"

namespace lcp::core {
namespace {

/// One compressed slab in flight between the compress stage and the
/// writer. Slabs finish out of order on the pool; `index` lets the writer
/// restore slab order before framing (the payload CRC is order-sensitive).
struct CompressedSlab {
  std::size_t index = 0;
  std::vector<std::uint8_t> container;
};

/// First failure among the parallel compression producers. Any worker may
/// lose the race to report; the first error wins and the rest are dropped
/// (they are all downstream casualties of the same abort).
struct ProducerState {
  Mutex mutex;
  Status status LCP_GUARDED_BY(mutex) = Status::ok();
};

}  // namespace

Expected<StreamingDumpStats> streaming_dump(const data::Field& field,
                                            ThreadPool& pool,
                                            io::NfsClient& client,
                                            const std::string& path,
                                            const StreamingDumpConfig& config) {
  Timer wall_timer;
  auto manifest_bytes = checkpoint_manifest(field, config.checkpoint);
  if (!manifest_bytes) {
    return manifest_bytes.status().with_context("streaming_dump");
  }
  if (config.queue_capacity == 0) {
    return Status::invalid_argument("streaming dump: zero queue capacity");
  }
  auto codec = compress::make_compressor(config.checkpoint.codec);
  if (!codec) {
    return codec.status().with_context("streaming_dump");
  }
  const std::size_t slab_count =
      compress::checkpoint_slab_count(field, config.checkpoint);

  StreamingDumpStats stats;
  stats.slabs = slab_count;
  stats.input_bytes = field.size_bytes();
  stats.slab_seconds.assign(slab_count, Seconds{0.0});

  BoundedQueue<CompressedSlab> queue{config.queue_capacity};
  ProducerState producer;
  // Written by the writer thread only, read after join() (which supplies
  // the happens-before edge); needs no lock.
  Status writer_status = Status::ok();
  std::size_t slabs_shipped = 0;

  ScopedThread writer([&] {
    compress::FrameParams params;
    params.flags = compress::kFrameFlagCheckpoint;
    compress::FramedWriter framed{params};
    auto stream = client.begin_file_stream(path);

    Seconds write_seconds{0.0};
    const auto ship = [&](std::span<const std::uint8_t> bytes) -> Status {
      Timer t;
      const Status st = stream.append(bytes);
      write_seconds = write_seconds + t.elapsed();
      return st;
    };

    // Placeholder header: its chunk count and payload CRC are only known
    // after the last chunk, so real bytes are back-patched at the end.
    const std::vector<std::uint8_t> zeros(compress::kFrameHeaderBytes, 0);
    Status st = ship(zeros);
    if (st.is_ok()) {
      framed.append_chunk(*manifest_bytes);
      st = ship(framed.take_emitted());
    }

    // Restore slab order: the pool delivers slabs as they finish, the
    // frame (and its order-sensitive payload CRC) needs them sequential.
    std::map<std::size_t, CompressedSlab> reorder;
    std::size_t next = 0;
    while (st.is_ok()) {
      auto item = queue.pop();
      if (!item) {
        break;  // closed and drained
      }
      reorder.emplace(item->index, std::move(*item));
      for (auto it = reorder.find(next);
           st.is_ok() && it != reorder.end();
           it = reorder.find(next)) {
        framed.append_chunk(it->second.container);
        reorder.erase(it);
        ++next;
        st = ship(framed.take_emitted());
      }
    }

    if (st.is_ok() && next == slab_count) {
      framed.append_chunk(*manifest_bytes);  // trailing replica
      auto tail = framed.finish_streaming();
      st = ship(tail.body);
      if (st.is_ok()) {
        st = ship(tail.trailer);
      }
      if (st.is_ok()) {
        Timer t;
        st = stream.write_at(0, tail.header);
        write_seconds = write_seconds + t.elapsed();
      }
      if (st.is_ok()) {
        st = stream.finish();
      }
      stats.frame_chunks = framed.chunks_emitted();
      stats.payload_bytes = Bytes{framed.payload_bytes()};
      stats.wire_bytes = Bytes{stream.bytes_written()};
      slabs_shipped = next;
    } else if (st.is_ok()) {
      // Queue closed before every slab arrived: a producer failed and its
      // status carries the real error.
      st = Status::internal("streaming dump: pipeline aborted upstream");
    }
    stats.write_seconds = write_seconds;
    writer_status = st;
    if (!st.is_ok()) {
      queue.close();  // unblock producers stuck on a full queue
    }
  });

  pool.parallel_for(
      0, slab_count,
      [&](std::size_t s) {
        if (queue.closed()) {
          return;  // pipeline already aborted; skip the remaining work
        }
        Timer t;
        auto container =
            compress::compress_checkpoint_slab(field, config.checkpoint, s,
                                               **codec);
        const Seconds elapsed = t.elapsed();
        if (!container) {
          {
            const MutexLock lock{producer.mutex};
            if (producer.status.is_ok()) {
              producer.status = container.status();
            }
          }
          queue.close();
          return;
        }
        stats.slab_seconds[s] = elapsed;
        (void)queue.push({s, std::move(*container)});
      },
      /*grain=*/1);
  queue.close();
  writer.join();

  Status producer_status = Status::ok();
  {
    const MutexLock lock{producer.mutex};
    producer_status = producer.status;
  }
  if (!producer_status.is_ok()) {
    return producer_status.with_context("streaming_dump");
  }
  if (!writer_status.is_ok()) {
    return writer_status.with_context("streaming_dump");
  }
  (void)slabs_shipped;

  for (const Seconds s : stats.slab_seconds) {
    stats.compress_seconds = stats.compress_seconds + s;
  }
  stats.queue_pushes = queue.total_pushed();
  stats.wall_seconds = wall_timer.elapsed();
  return stats;
}

}  // namespace lcp::core
