#include "core/platform.hpp"

namespace lcp::core {

Platform::Platform(power::ChipId chip, power::NoiseModel noise,
                   std::uint64_t seed)
    : spec_(power::chip(chip)),
      governor_(spec_),
      sampler_(spec_, noise, seed) {}

power::Measurement Platform::run(const power::Workload& w) {
  return sampler_.sample(w, governor_.current());
}

Expected<power::Measurement> Platform::run_at(const power::Workload& w,
                                              GigaHertz f) {
  LCP_RETURN_IF_ERROR(governor_.set_frequency(f));
  return run(w);
}

std::vector<power::Measurement> Platform::run_repeats(const power::Workload& w,
                                                      std::size_t repeats) {
  return sampler_.sample_repeats(w, governor_.current(), repeats);
}

std::vector<power::Measurement> Platform::run_repeats_seeded(
    const power::Workload& w, GigaHertz f, std::size_t repeats,
    std::uint64_t stream) const {
  return sampler_.sample_repeats_stream(w, f, repeats, stream);
}

void Platform::record_measurements(std::span<const power::Measurement> ms) {
  for (const auto& m : ms) {
    sampler_.record(m);
  }
}

}  // namespace lcp::core
