#pragma once
// Platform: one simulated CloudLab node = chip model + userspace governor +
// perf-style energy sampler. The experiment-facing seam of the library:
// studies pin a frequency and run workloads, exactly mirroring the paper's
// cpufreq-set + perf-stat measurement loop.

#include <span>

#include "dvfs/governor.hpp"
#include "power/chip_model.hpp"
#include "power/noise_model.hpp"
#include "power/perf_sampler.hpp"

namespace lcp::core {

class Platform {
 public:
  Platform(power::ChipId chip, power::NoiseModel noise, std::uint64_t seed);

  [[nodiscard]] const power::ChipSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] dvfs::Governor& governor() noexcept { return governor_; }
  [[nodiscard]] const dvfs::Governor& governor() const noexcept {
    return governor_;
  }

  /// Runs `w` once at the governor's current frequency.
  [[nodiscard]] power::Measurement run(const power::Workload& w);

  /// Pins `f` and runs once. Fails if `f` is outside the DVFS range.
  [[nodiscard]] Expected<power::Measurement> run_at(const power::Workload& w,
                                                    GigaHertz f);

  /// Repeated measurement at the current frequency (the paper's 10x loop).
  [[nodiscard]] std::vector<power::Measurement> run_repeats(
      const power::Workload& w, std::size_t repeats);

  /// Pure repeated measurement at a pinned frequency, drawn from an
  /// independent noise stream keyed by `stream`. Thread-safe (touches no
  /// platform state) — the parallel sweep's seam. Pair with
  /// record_measurements to fold energies into the package counter.
  [[nodiscard]] std::vector<power::Measurement> run_repeats_seeded(
      const power::Workload& w, GigaHertz f, std::size_t repeats,
      std::uint64_t stream) const;

  /// Adds the energies of `ms` to the package counter, in order.
  void record_measurements(std::span<const power::Measurement> ms);

  [[nodiscard]] const power::EnergyCounter& package_counter() const noexcept {
    return sampler_.counter();
  }

 private:
  const power::ChipSpec& spec_;
  dvfs::Governor governor_;
  power::PerfSampler sampler_;
};

}  // namespace lcp::core
