#pragma once
// Data-transit power study (Section IV-B): write 1-16 GB buffers to the
// NFS over the DVFS range of both chips with repeats. No calibration phase
// is needed — the transit model is parameterized directly by size and chip
// (only size matters for transmission, per Section III-C).
//
// With a FaultPlan enabled the study runs a real (byte-moving) probe
// transfer per point through the retrying NfsClient, extrapolates the
// measured retransmit/idle overhead to the full size, and sweeps the
// degraded workload. A point whose probe exhausts its retries is recorded
// with its typed Status instead of crashing the study.

#include <vector>

#include "core/platform.hpp"
#include "core/sweep.hpp"
#include "io/fault.hpp"
#include "io/transit_model.hpp"
#include "power/noise_model.hpp"

namespace lcp::core {

/// Fault-injection knobs of the study; disabled by default (and when
/// disabled the study is byte-identical to the fault-free code path).
struct TransitFaultConfig {
  bool enabled = false;
  io::FaultPlan plan;
  io::RetryPolicy retry;
  /// Probe transfers use this wsize so even small loss rates are exercised
  /// with a meaningful chunk count.
  std::size_t probe_chunk_bytes = 64 * 1024;
  /// Probe transfer size = min(point size, probe_chunks * probe_chunk_bytes).
  std::uint64_t probe_chunks = 64;
};

struct TransitStudyConfig {
  std::vector<Bytes> sizes;  ///< empty => the paper's 1..16 GB ladder
  std::size_t repeats = 10;
  std::uint64_t seed = 20220530;
  power::NoiseModel noise;
  std::vector<power::ChipId> chips;  ///< empty => both
  io::TransitModelConfig transit;
  TransitFaultConfig fault;
};

struct TransitSeries {
  power::ChipId chip;
  Bytes size;
  std::vector<SweepPoint> sweep;  ///< empty when the point failed
  /// Non-OK when the probe transfer exhausted its retries: the point is
  /// recorded as failed, the study keeps going.
  Status status = Status::ok();
  /// Measured retry overhead applied to this point's workload (zero when
  /// faults are disabled or none fired).
  io::TransitRetryProfile retry;
};

struct TransitStudyResult {
  std::vector<TransitSeries> series;

  [[nodiscard]] std::size_t failed_points() const noexcept {
    std::size_t n = 0;
    for (const auto& s : series) {
      n += s.status.is_ok() ? 0 : 1;
    }
    return n;
  }
};

[[nodiscard]] Expected<TransitStudyResult> run_transit_study(
    const TransitStudyConfig& config);

}  // namespace lcp::core
