#pragma once
// Data-transit power study (Section IV-B): write 1-16 GB buffers to the
// NFS over the DVFS range of both chips with repeats. No calibration phase
// is needed — the transit model is parameterized directly by size and chip
// (only size matters for transmission, per Section III-C).

#include <vector>

#include "core/platform.hpp"
#include "core/sweep.hpp"
#include "io/transit_model.hpp"
#include "power/noise_model.hpp"

namespace lcp::core {

struct TransitStudyConfig {
  std::vector<Bytes> sizes;  ///< empty => the paper's 1..16 GB ladder
  std::size_t repeats = 10;
  std::uint64_t seed = 20220530;
  power::NoiseModel noise;
  std::vector<power::ChipId> chips;  ///< empty => both
  io::TransitModelConfig transit;
};

struct TransitSeries {
  power::ChipId chip;
  Bytes size;
  std::vector<SweepPoint> sweep;
};

struct TransitStudyResult {
  std::vector<TransitSeries> series;
};

[[nodiscard]] Expected<TransitStudyResult> run_transit_study(
    const TransitStudyConfig& config);

}  // namespace lcp::core
