#include "core/study_export.hpp"

#include "compress/common/registry.hpp"
#include "data/registry.hpp"
#include "support/table.hpp"

namespace lcp::core {
namespace {

void append_sweep_rows(CsvWriter& csv, const std::vector<SweepPoint>& sweep,
                       const std::vector<std::string>& id_cells) {
  const ScaledCurve power = scale_by_max_frequency(sweep, SweepMetric::kPower);
  const ScaledCurve runtime =
      scale_by_max_frequency(sweep, SweepMetric::kRuntime);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& p = sweep[i];
    std::vector<std::string> row = id_cells;
    row.push_back(format_double(p.frequency.ghz(), 3));
    row.push_back(format_double(p.power_w.mean, 4));
    row.push_back(format_double(p.power_w.ci95_half, 4));
    row.push_back(format_double(p.runtime_s.mean, 6));
    row.push_back(format_double(p.runtime_s.ci95_half, 6));
    row.push_back(format_double(p.energy_j.mean, 4));
    row.push_back(format_double(p.energy_j.ci95_half, 4));
    row.push_back(format_double(power.value[i], 5));
    row.push_back(format_double(runtime.value[i], 5));
    csv.add_row(std::move(row));
  }
}

const std::vector<std::string> kStatColumns = {
    "f_ghz",          "power_w_mean",   "power_w_ci95",  "runtime_s_mean",
    "runtime_s_ci95", "energy_j_mean",  "energy_j_ci95", "scaled_power",
    "scaled_runtime"};

std::vector<std::string> with_stats(std::vector<std::string> ids) {
  ids.insert(ids.end(), kStatColumns.begin(), kStatColumns.end());
  return ids;
}

}  // namespace

CsvWriter export_compression_study(const CompressionStudyResult& result) {
  CsvWriter csv{with_stats({"chip", "codec", "dataset", "error_bound"})};
  for (const auto& series : result.series) {
    append_sweep_rows(
        csv, series.sweep,
        {power::chip_series_name(series.chip),
         compress::codec_name(series.codec),
         data::dataset_name(series.dataset),
         format_scientific(series.error_bound, 1)});
  }
  return csv;
}

CsvWriter export_transit_study(const TransitStudyResult& result) {
  CsvWriter csv{with_stats({"chip", "size_gb"})};
  for (const auto& series : result.series) {
    append_sweep_rows(csv, series.sweep,
                      {power::chip_series_name(series.chip),
                       format_double(series.size.gb(), 2)});
  }
  return csv;
}

CsvWriter export_validation_study(const ValidationResult& result) {
  CsvWriter csv{with_stats({"field", "codec"})};
  for (const auto& series : result.series) {
    append_sweep_rows(csv, series.sweep,
                      {data::isabel_kind_name(series.kind),
                       compress::codec_name(series.codec)});
  }
  return csv;
}

CsvWriter export_calibrations(const CompressionStudyResult& result) {
  CsvWriter csv{{"codec", "dataset", "error_bound", "native_seconds",
                 "compression_ratio", "max_abs_error", "input_mb"}};
  for (const auto& cal : result.calibrations) {
    csv.add_row({compress::codec_name(cal.codec),
                 data::dataset_name(cal.dataset),
                 format_scientific(cal.error_bound, 1),
                 format_double(cal.native_seconds.seconds(), 6),
                 format_double(cal.compression_ratio, 3),
                 format_scientific(cal.max_abs_error, 3),
                 format_double(cal.input_bytes.mb(), 2)});
  }
  return csv;
}

}  // namespace lcp::core
