#pragma once
// Compression power study (Sections III-IV-A): run SZ and ZFP on the
// Table I datasets at four error bounds, across both chips' full DVFS
// ranges with repeats.
//
// Two-phase design mirroring DESIGN.md: a *calibration* phase really
// executes each codec on really-generated data (capturing relative codec
// cost, error-bound cost scaling and compression ratios), then the *sweep*
// phase maps each calibrated workload through the platform simulator at
// every frequency.

#include <vector>

#include "compress/common/registry.hpp"
#include "core/platform.hpp"
#include "core/sweep.hpp"
#include "data/registry.hpp"
#include "power/noise_model.hpp"

namespace lcp::core {

/// Per-codec execution characteristics used to build workloads.
/// Values follow the paper's observed trade-offs: compression is roughly
/// half cpu-bound at f_max (-12.5% f => +7.5% t, Section V-A.3) and SZ's
/// entropy stage keeps the core slightly busier than ZFP's block loop.
struct CodecProfile {
  double cpu_fraction;  ///< beta at f_max
  double activity;      ///< package dynamic activity factor
};

[[nodiscard]] CodecProfile codec_profile(compress::CodecId id) noexcept;

/// Study configuration.
struct CompressionStudyConfig {
  data::Scale scale = data::Scale::kCi;
  std::vector<double> error_bounds;  ///< empty => the paper's four bounds
  std::size_t repeats = 10;
  std::uint64_t seed = 20220530;  ///< IPDPSW 2022 vintage
  power::NoiseModel noise;
  std::vector<power::ChipId> chips;          ///< empty => both
  std::vector<compress::CodecId> codecs;     ///< empty => both
  std::vector<data::DatasetId> datasets;     ///< empty => Table I three
};

/// Result of the calibration phase for one (codec, dataset, bound) cell.
struct Calibration {
  compress::CodecId codec;
  data::DatasetId dataset;
  double error_bound = 0.0;
  Seconds native_seconds;       ///< real compression wall time (host)
  Seconds decompress_seconds;   ///< real decompression wall time (host)
  double compression_ratio = 0.0;
  double max_abs_error = 0.0;
  Bytes input_bytes;
};

/// One swept series: the sweep plus everything identifying it.
struct CompressionSeries {
  power::ChipId chip;
  compress::CodecId codec;
  data::DatasetId dataset;
  double error_bound = 0.0;
  std::vector<SweepPoint> sweep;
};

/// Full study output.
struct CompressionStudyResult {
  std::vector<Calibration> calibrations;
  std::vector<CompressionSeries> series;
};

/// Runs the study. Deterministic in the config seed.
[[nodiscard]] Expected<CompressionStudyResult> run_compression_study(
    const CompressionStudyConfig& config);

/// Calibrates one cell (exposed for targeted tests and the dump
/// experiment): generates the dataset, compresses, verifies the bound.
[[nodiscard]] Expected<Calibration> calibrate_codec(compress::CodecId codec,
                                                    data::DatasetId dataset,
                                                    double error_bound,
                                                    data::Scale scale,
                                                    std::uint64_t seed);

/// Same, against an already-generated field (the study uses this to avoid
/// regenerating each dataset once per codec x bound — 8x at paper scale).
[[nodiscard]] Expected<Calibration> calibrate_codec_on_field(
    compress::CodecId codec, data::DatasetId dataset, double error_bound,
    const data::Field& field);

/// Workload for a calibrated cell on a chip.
[[nodiscard]] power::Workload workload_from_calibration(
    const Calibration& cal, const power::ChipSpec& spec);

}  // namespace lcp::core
