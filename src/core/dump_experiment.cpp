#include "core/dump_experiment.hpp"

#include "compress/common/framing.hpp"

namespace lcp::core {

Joules DumpResult::mean_energy_saved() const noexcept {
  if (outcomes.empty()) {
    return Joules{0.0};
  }
  double total = 0.0;
  for (const auto& o : outcomes) {
    total += o.plan.energy_saved().joules();
  }
  return Joules{total / static_cast<double>(outcomes.size())};
}

double DumpResult::mean_energy_savings() const noexcept {
  if (outcomes.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& o : outcomes) {
    total += o.plan.energy_savings();
  }
  return total / static_cast<double>(outcomes.size());
}

Expected<DumpResult> run_dump_experiment(const DumpConfig& config) {
  DumpConfig cfg = config;
  if (cfg.error_bounds.empty()) {
    cfg.error_bounds = compress::paper_error_bounds();
  }
  if (cfg.total_bytes.bytes() == 0) {
    return Status::invalid_argument("dump experiment needs a positive volume");
  }
  const power::ChipSpec& spec = power::chip(cfg.chip);

  DumpResult result;
  for (double eb : cfg.error_bounds) {
    auto cal =
        calibrate_codec(cfg.codec, data::DatasetId::kNyx, eb, cfg.scale,
                        cfg.seed);
    if (!cal) {
      return cal.status();
    }

    // Extrapolate the really-measured chunk to the full volume.
    const double scale_up = static_cast<double>(cfg.total_bytes.bytes()) /
                            static_cast<double>(cal->input_bytes.bytes());
    Calibration full = *cal;
    full.native_seconds = cal->native_seconds * scale_up;
    full.input_bytes = cfg.total_bytes;

    const auto compress_workload = workload_from_calibration(full, spec);
    const Bytes compressed_bytes{static_cast<std::uint64_t>(
        static_cast<double>(cfg.total_bytes.bytes()) /
        cal->compression_ratio)};
    Bytes wire_bytes = compressed_bytes;
    if (cfg.frame_chunk_bytes > 0) {
      wire_bytes =
          Bytes{compressed_bytes.bytes() +
                compress::frame_overhead_bytes(
                    static_cast<std::size_t>(compressed_bytes.bytes()),
                    cfg.frame_chunk_bytes)};
    }
    const auto write_workload =
        io::transit_workload(spec, wire_bytes, cfg.transit);

    DumpOutcome outcome;
    outcome.error_bound = eb;
    outcome.compression_ratio = cal->compression_ratio;
    outcome.compressed_bytes = compressed_bytes;
    outcome.framed_bytes = wire_bytes;
    outcome.plan = tuning::plan_compressed_dump(spec, compress_workload,
                                                write_workload, cfg.rule);
    if (cfg.overlap) {
      outcome.overlap =
          tuning::plan_overlapped_dump(spec, compress_workload, write_workload,
                                       cfg.rule, cfg.overlap_depth);
      outcome.overlapped = true;
    }
    result.outcomes.push_back(outcome);
  }
  return result;
}

}  // namespace lcp::core
