#include "core/sweep.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace lcp::core {

std::vector<SweepPoint> frequency_sweep(Platform& platform,
                                        const power::Workload& w,
                                        const SweepOptions& options) {
  LCP_REQUIRE(options.repeats > 0, "sweep needs at least one repeat");
  const auto steps = platform.governor().range().steps();
  std::vector<std::vector<power::Measurement>> samples(steps.size());
  std::vector<SweepPoint> out(steps.size());

  // Each grid point is an independent simulated measurement with its own
  // noise stream keyed by the frequency index, so execution order — and
  // therefore parallelism — cannot change any result bit.
  auto run_point = [&](std::size_t idx) {
    samples[idx] =
        platform.run_repeats_seeded(w, steps[idx], options.repeats, idx);

    std::vector<double> power;
    std::vector<double> runtime;
    std::vector<double> energy;
    power.reserve(samples[idx].size());
    runtime.reserve(samples[idx].size());
    energy.reserve(samples[idx].size());
    for (const auto& m : samples[idx]) {
      power.push_back(m.average_power().watts());
      runtime.push_back(m.runtime.seconds());
      energy.push_back(m.energy.joules());
    }
    SweepPoint& point = out[idx];
    point.frequency = steps[idx];
    point.power_w = summarize(power);
    point.runtime_s = summarize(runtime);
    point.energy_j = summarize(energy);
  };

  if (options.pool != nullptr) {
    options.pool->parallel_for(0, steps.size(), run_point, 1);
  } else {
    for (std::size_t idx = 0; idx < steps.size(); ++idx) {
      run_point(idx);
    }
  }

  // Fold energies into the package counter in frequency order, keeping the
  // RAPL-style accumulator deterministic under either execution mode.
  for (const auto& point_samples : samples) {
    platform.record_measurements(point_samples);
  }
  platform.governor().reset();
  return out;
}

std::vector<SweepPoint> frequency_sweep(Platform& platform,
                                        const power::Workload& w,
                                        std::size_t repeats) {
  SweepOptions options;
  options.repeats = repeats;
  return frequency_sweep(platform, w, options);
}

ScaledCurve scale_by_max_frequency(const std::vector<SweepPoint>& points,
                                   SweepMetric metric) {
  LCP_REQUIRE(!points.empty(), "cannot scale an empty sweep");
  auto pick = [metric](const SweepPoint& p) -> const SampleSummary& {
    switch (metric) {
      case SweepMetric::kPower:
        return p.power_w;
      case SweepMetric::kRuntime:
        return p.runtime_s;
      case SweepMetric::kEnergy:
        return p.energy_j;
    }
    return p.power_w;  // unreachable
  };
  const auto max_it =
      std::max_element(points.begin(), points.end(),
                       [](const SweepPoint& a, const SweepPoint& b) {
                         return a.frequency < b.frequency;
                       });
  const double denom = pick(*max_it).mean;
  LCP_REQUIRE(denom > 0.0, "metric at max frequency must be positive");

  ScaledCurve curve;
  curve.f_ghz.reserve(points.size());
  curve.value.reserve(points.size());
  curve.ci95.reserve(points.size());
  for (const auto& p : points) {
    curve.f_ghz.push_back(p.frequency.ghz());
    curve.value.push_back(pick(p).mean / denom);
    curve.ci95.push_back(pick(p).ci95_half / denom);
  }
  return curve;
}

}  // namespace lcp::core
