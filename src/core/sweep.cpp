#include "core/sweep.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace lcp::core {

std::vector<SweepPoint> frequency_sweep(Platform& platform,
                                        const power::Workload& w,
                                        std::size_t repeats) {
  LCP_REQUIRE(repeats > 0, "sweep needs at least one repeat");
  std::vector<SweepPoint> out;
  const auto steps = platform.governor().range().steps();
  out.reserve(steps.size());
  for (GigaHertz f : steps) {
    const Status set = platform.governor().set_frequency(f);
    LCP_REQUIRE(set.is_ok(), "grid frequency rejected by governor");
    const auto samples = platform.run_repeats(w, repeats);

    std::vector<double> power;
    std::vector<double> runtime;
    std::vector<double> energy;
    power.reserve(samples.size());
    runtime.reserve(samples.size());
    energy.reserve(samples.size());
    for (const auto& m : samples) {
      power.push_back(m.average_power().watts());
      runtime.push_back(m.runtime.seconds());
      energy.push_back(m.energy.joules());
    }
    SweepPoint point;
    point.frequency = f;
    point.power_w = summarize(power);
    point.runtime_s = summarize(runtime);
    point.energy_j = summarize(energy);
    out.push_back(point);
  }
  platform.governor().reset();
  return out;
}

ScaledCurve scale_by_max_frequency(const std::vector<SweepPoint>& points,
                                   SweepMetric metric) {
  LCP_REQUIRE(!points.empty(), "cannot scale an empty sweep");
  auto pick = [metric](const SweepPoint& p) -> const SampleSummary& {
    switch (metric) {
      case SweepMetric::kPower:
        return p.power_w;
      case SweepMetric::kRuntime:
        return p.runtime_s;
      case SweepMetric::kEnergy:
        return p.energy_j;
    }
    return p.power_w;  // unreachable
  };
  const auto max_it =
      std::max_element(points.begin(), points.end(),
                       [](const SweepPoint& a, const SweepPoint& b) {
                         return a.frequency < b.frequency;
                       });
  const double denom = pick(*max_it).mean;
  LCP_REQUIRE(denom > 0.0, "metric at max frequency must be positive");

  ScaledCurve curve;
  curve.f_ghz.reserve(points.size());
  curve.value.reserve(points.size());
  curve.ci95.reserve(points.size());
  for (const auto& p : points) {
    curve.f_ghz.push_back(p.frequency.ghz());
    curve.value.push_back(pick(p).mean / denom);
    curve.ci95.push_back(pick(p).ci95_half / denom);
  }
  return curve;
}

}  // namespace lcp::core
