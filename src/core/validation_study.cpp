#include "core/validation_study.hpp"

#include "compress/common/metrics.hpp"

namespace lcp::core {

Expected<ValidationResult> run_validation_study(
    const ValidationConfig& config, const model::PowerLawFit& broadwell_model) {
  const auto& spec = data::isabel_dataset();
  const auto& dims = data::dims_for(spec, config.scale);

  ValidationResult result;
  Platform platform{config.chip, config.noise, config.seed ^ 0x15abe1u};

  std::vector<double> pooled_f;
  std::vector<double> pooled_power;

  for (data::IsabelKind kind : data::isabel_all_kinds()) {
    const auto field =
        data::generate_isabel(kind, dims.extent(0), dims.extent(1),
                              dims.extent(2), config.seed);
    for (compress::CodecId codec : compress::all_codecs()) {
      const auto compressor = compress::make_compressor(codec);
      auto report = compress::round_trip(
          *compressor, field,
          compress::ErrorBound::absolute(config.error_bound));
      if (!report) {
        return report.status();
      }
      if (!report->bound_respected) {
        return Status::internal("codec violated bound on Isabel field");
      }
      const CodecProfile profile = codec_profile(codec);
      const auto workload = power::compression_workload(
          platform.spec(), report->compress_time, profile.cpu_fraction,
          profile.activity);

      ValidationSeries series;
      series.kind = kind;
      series.codec = codec;
      series.sweep = frequency_sweep(platform, workload, config.repeats);

      const ScaledCurve curve =
          scale_by_max_frequency(series.sweep, SweepMetric::kPower);
      pooled_f.insert(pooled_f.end(), curve.f_ghz.begin(), curve.f_ghz.end());
      pooled_power.insert(pooled_power.end(), curve.value.begin(),
                          curve.value.end());
      result.series.push_back(std::move(series));
    }
  }

  auto stats = model::validate_fit(broadwell_model, pooled_f, pooled_power);
  if (!stats) {
    return stats.status();
  }
  result.stats = *stats;
  return result;
}

}  // namespace lcp::core
