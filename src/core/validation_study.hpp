#pragma once
// Section VI-A / Figure 5: test the fitted Broadwell compression model on
// data it never saw — the six Hurricane-ISABEL fields (PRECIP, P, TC, U,
// V, W) compressed with SZ and ZFP at a 1e-4 bound — and report SSE/RMSE
// of the fixed model against the new scaled-power observations.

#include <vector>

#include "core/compression_study.hpp"
#include "core/model_tables.hpp"
#include "data/generators.hpp"

namespace lcp::core {

struct ValidationConfig {
  data::Scale scale = data::Scale::kCi;
  double error_bound = 1e-4;
  std::size_t repeats = 10;
  std::uint64_t seed = 20220530;
  power::NoiseModel noise;
  power::ChipId chip = power::ChipId::kBroadwellD1548;
};

/// One validation series (per Isabel field x codec).
struct ValidationSeries {
  data::IsabelKind kind;
  compress::CodecId codec;
  std::vector<SweepPoint> sweep;
};

struct ValidationResult {
  std::vector<ValidationSeries> series;
  /// GF of `model` on the pooled new observations (paper: SSE 0.1463,
  /// RMSE 0.0256).
  model::FitStats stats;
};

/// Sweeps the Isabel fields and scores `broadwell_model` against them.
[[nodiscard]] Expected<ValidationResult> run_validation_study(
    const ValidationConfig& config, const model::PowerLawFit& broadwell_model);

}  // namespace lcp::core
