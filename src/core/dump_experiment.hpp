#pragma once
// Section VI-B / Figure 6: compress 512 GB of NYX data with SZ and write
// it over the NFS, comparing the base clock against the Eqn 3 tuned plan
// at each error bound. The 512 GB input is obtained exactly as in the
// paper — by logical concatenation: one chunk is really compressed, and
// its per-byte cost and compression ratio extrapolate to the full volume.

#include <vector>

#include "core/compression_study.hpp"
#include "io/transit_model.hpp"
#include "tuning/io_plan.hpp"
#include "tuning/rule.hpp"

namespace lcp::core {

struct DumpConfig {
  Bytes total_bytes = Bytes::from_gb(512);
  data::Scale scale = data::Scale::kCi;  ///< chunk size for calibration
  std::vector<double> error_bounds;      ///< empty => the paper's four
  power::ChipId chip = power::ChipId::kBroadwellD1548;
  compress::CodecId codec = compress::CodecId::kSz;  ///< paper uses SZ
  tuning::TuningRule rule = tuning::paper_rule();
  io::TransitModelConfig transit;
  std::uint64_t seed = 20220530;
  /// When > 0 the dump is written as a resilient framed stream
  /// (compress/common/framing.hpp) cut at this chunk size, and the frame
  /// overhead is priced into the write transit energy. 0 keeps the
  /// original unframed path bit-for-bit.
  std::size_t frame_chunk_bytes = 0;
  /// When true each outcome additionally carries the streaming engine's
  /// overlapped schedule (tuning::plan_overlapped_dump over overlap_depth
  /// slabs: compression of slab i+1 hidden behind the framed write of
  /// slab i). Off leaves every outcome bit-identical to the serial
  /// experiment — the serial plan is computed either way.
  bool overlap = false;
  std::size_t overlap_depth = 8;
};

/// One error bound's base-vs-tuned outcome.
struct DumpOutcome {
  double error_bound = 0.0;
  double compression_ratio = 0.0;
  Bytes compressed_bytes;
  /// Bytes actually put on the wire: compressed payload plus frame
  /// overhead; equals compressed_bytes when framing is off.
  Bytes framed_bytes;
  tuning::PlanComparison plan;
  /// Streaming schedule for the same workloads; default-constructed (and
  /// `overlapped` false) unless DumpConfig.overlap was set.
  tuning::OverlapPlan overlap;
  bool overlapped = false;
};

struct DumpResult {
  std::vector<DumpOutcome> outcomes;

  /// Mean energy saved across bounds (paper: ~6.5 kJ).
  [[nodiscard]] Joules mean_energy_saved() const noexcept;
  /// Mean fractional savings (paper: ~13%).
  [[nodiscard]] double mean_energy_savings() const noexcept;
};

[[nodiscard]] Expected<DumpResult> run_dump_experiment(const DumpConfig& config);

}  // namespace lcp::core
