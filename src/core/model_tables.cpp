#include "core/model_tables.hpp"

namespace lcp::core {
namespace {

void append_scaled(const std::vector<SweepPoint>& sweep,
                   ScaledObservations& out) {
  const ScaledCurve curve = scale_by_max_frequency(sweep, SweepMetric::kPower);
  out.f_ghz.insert(out.f_ghz.end(), curve.f_ghz.begin(), curve.f_ghz.end());
  out.scaled_power.insert(out.scaled_power.end(), curve.value.begin(),
                          curve.value.end());
}

}  // namespace

model::CodecFilter to_codec_filter(compress::CodecId id) noexcept {
  return id == compress::CodecId::kSz ? model::CodecFilter::kSz
                                      : model::CodecFilter::kZfp;
}

ScaledObservations collect_compression_observations(
    const CompressionStudyResult& result, const model::Partition& partition) {
  ScaledObservations out;
  for (const auto& series : result.series) {
    if (partition.matches(to_codec_filter(series.codec), series.chip)) {
      append_scaled(series.sweep, out);
    }
  }
  return out;
}

ScaledObservations collect_transit_observations(
    const TransitStudyResult& result, const model::Partition& partition) {
  ScaledObservations out;
  for (const auto& series : result.series) {
    // Transit has no codec axis; reuse the chip filter only.
    if (!partition.chip.has_value() || *partition.chip == series.chip) {
      append_scaled(series.sweep, out);
    }
  }
  return out;
}

Expected<std::vector<ModelTableRow>> build_compression_models(
    const CompressionStudyResult& result) {
  std::vector<ModelTableRow> rows;
  for (const auto& partition : model::compression_partitions()) {
    const auto obs = collect_compression_observations(result, partition);
    if (obs.f_ghz.size() < 4) {
      continue;  // partition not covered by this study's configuration
    }
    auto fit = model::fit_power_law(obs.f_ghz, obs.scaled_power);
    if (!fit) {
      return fit.status();
    }
    rows.push_back({partition, *fit, obs.f_ghz.size()});
  }
  return rows;
}

Expected<std::vector<ModelTableRow>> build_transit_models(
    const TransitStudyResult& result) {
  std::vector<ModelTableRow> rows;
  for (const auto& partition : model::transit_partitions()) {
    const auto obs = collect_transit_observations(result, partition);
    if (obs.f_ghz.size() < 4) {
      continue;
    }
    auto fit = model::fit_power_law(obs.f_ghz, obs.scaled_power);
    if (!fit) {
      return fit.status();
    }
    rows.push_back({partition, *fit, obs.f_ghz.size()});
  }
  return rows;
}

}  // namespace lcp::core
