#pragma once
// Builds Tables IV and V: per-partition power-law regressions of the
// scaled power observations produced by the studies.

#include <vector>

#include "core/compression_study.hpp"
#include "core/transit_study.hpp"
#include "model/partitions.hpp"
#include "model/power_law.hpp"

namespace lcp::core {

/// One fitted row of Table IV / V.
struct ModelTableRow {
  model::Partition partition;
  model::PowerLawFit fit;
  std::size_t observations = 0;
};

/// Scaled-power observations pooled for a regression.
struct ScaledObservations {
  std::vector<double> f_ghz;
  std::vector<double> scaled_power;
};

/// Pools the scaled power curve of every series matching `partition`.
[[nodiscard]] ScaledObservations collect_compression_observations(
    const CompressionStudyResult& result, const model::Partition& partition);

[[nodiscard]] ScaledObservations collect_transit_observations(
    const TransitStudyResult& result, const model::Partition& partition);

/// Table IV: {Total, SZ, ZFP, Broadwell, Skylake} fits.
[[nodiscard]] Expected<std::vector<ModelTableRow>> build_compression_models(
    const CompressionStudyResult& result);

/// Table V: {Total, Broadwell, Skylake} fits.
[[nodiscard]] Expected<std::vector<ModelTableRow>> build_transit_models(
    const TransitStudyResult& result);

/// Codec id -> partition filter tag.
[[nodiscard]] model::CodecFilter to_codec_filter(compress::CodecId id) noexcept;

}  // namespace lcp::core
