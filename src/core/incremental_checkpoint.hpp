#pragma once
// Replicated incremental checkpoint store. A periodic full dump compresses
// and ships every slab of the field every generation, even when the
// application only touched a few percent of it between dumps; at exascale
// the unchanged bytes dominate the I/O energy bill. This store makes the
// dump cost proportional to what changed:
//
//   - Content-addressed slabs. Each slab of the field (sliced exactly as
//     compress/common/checkpoint.hpp slices it) is compressed and stored
//     as an object named by the FNV-1a 64 hash of its compressed bytes,
//     under <root>/slabs/<hex16>. Objects are immutable and self-verifying:
//     a reader re-hashes the fetched bytes and rejects any copy that does
//     not match its name.
//
//   - Dirty detection by raw-content hash. The journal records, per slab,
//     the hash of the slab's RAW float bytes alongside the stored object's
//     hash. The next dump re-hashes each raw slab and skips compression
//     and transit entirely for slabs whose raw hash is unchanged — lossy
//     codecs make "compress and compare" useless for this, so the raw
//     hash is the dirty key and the stored hash is the object key.
//
//   - Append-only manifest journal. Each generation appends one entry
//     (codec, bound, dims, and the per-slab hash table) to a logical
//     journal, serialized as one framed stream per rewrite epoch at
//     <root>/journal.<hex16 epoch> with one CRC-protected chunk per entry
//     (kFrameFlagJournal) and the usual header/trailer replica pair. A
//     tampered entry fails its chunk CRC and takes down only its own
//     generation — the rest of the journal stays readable. Every rewrite
//     goes to a NEW epoch-named file; superseded epochs are pruned only
//     after the new epoch reaches the write quorum, so a failed publish
//     can never destroy the committed journal (there is no
//     remove-before-write window). A publish that misses quorum is rolled
//     back best-effort and its epoch is burnt, so a retry always writes a
//     strictly higher epoch and can never fork an already-written one.
//
//   - N-way replication (io/replica_set.hpp). Every object and journal
//     write fans out to all replicas; a dump is durable when the write
//     quorum acked. Restores read the journal from a quorum of replicas
//     (entries cross-checked: CRC-valid copies that disagree fail closed)
//     and fetch each slab from any replica that serves a hash-verified
//     copy, failing over per slab. All replication traffic lands on the
//     replica clients' byte counters, where the transit energy model
//     prices it.
//
//   - GC. drop_generation() retires a journal entry; gc() removes every
//     stored object no live generation references and rebuilds the dedup
//     index from the survivors, so a dropped generation's slabs can never
//     be resurrected by reference.
//
// Concurrency: dump/drop_generation/gc/open mutate store state and are
// serialized on an internal mutex. restore() is a pure read path — it
// re-reads the journal from the replicas on every call and touches no
// store members — so any number of restores may run concurrently with
// each other (but not with a writer, same as any checkpoint file).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/common/checkpoint.hpp"
#include "data/field.hpp"
#include "io/replica_set.hpp"
#include "support/status.hpp"
#include "support/thread_annotations.hpp"
#include "support/units.hpp"

namespace lcp::core {

struct IncrementalStoreOptions {
  /// Object-store prefix on every replica; slab objects live under
  /// "<root>/slabs/", the journal at "<root>/journal.<hex16 epoch>".
  std::string root = "ckpt";
  /// Slab codec/bound/slicing — identical semantics to write_checkpoint.
  compress::CheckpointOptions checkpoint;
};

/// Per-slab row of one journal entry.
struct SlabRecord {
  std::uint64_t raw_hash = 0;     ///< FNV-1a 64 of the slab's raw floats
  std::uint64_t stored_hash = 0;  ///< FNV-1a 64 of the compressed object
  std::uint64_t stored_bytes = 0; ///< compressed object size
};

/// One journal entry = one dump generation.
struct GenerationEntry {
  std::uint64_t generation = 0;  ///< 1-based, strictly increasing
  std::uint64_t parent = 0;      ///< previous generation, 0 for the first
  std::string codec;
  compress::ErrorBound bound;
  data::Dims dims;
  std::string field_name;
  std::uint64_t chunk_elements = 0;
  std::uint32_t dirty_slabs = 0;  ///< slabs re-encoded for this generation
  std::vector<SlabRecord> slabs;
};

/// Accounting for one dump() call.
struct DumpSummary {
  std::uint64_t generation = 0;
  std::size_t slab_count = 0;
  std::size_t dirty_slabs = 0;    ///< raw hash changed since parent
  std::size_t written_slabs = 0;  ///< dirty minus dedup hits
  Bytes payload_bytes{0};         ///< logical compressed bytes written
  Bytes journal_bytes{0};         ///< logical journal stream size
  Bytes replicated_bytes{0};      ///< wire bytes across all replicas
};

/// Accounting for drop_generation() / gc().
struct GcReport {
  std::size_t objects_removed = 0;  ///< distinct object names removed
  std::size_t objects_live = 0;     ///< distinct object names still referenced
  Bytes bytes_freed{0};             ///< summed across replicas
};

/// Outcome of one restore, with per-slab verdicts mirroring
/// recover_checkpoint's report.
struct RestoreReport {
  data::Field field;
  std::uint64_t generation = 0;
  std::vector<compress::SlabVerdict> slabs;
  std::size_t total_elements = 0;
  std::size_t lost_elements = 0;
  /// Replica fetches that had to fail over (down replica, missing or
  /// hash-mismatched copy) before a good copy — or none — was found.
  std::size_t slab_failovers = 0;
  /// True when the journal itself needed cross-replica chunk failover.
  bool journal_degraded = false;

  [[nodiscard]] std::size_t recovered_slabs() const noexcept;
  [[nodiscard]] bool complete() const noexcept { return lost_elements == 0; }
};

class IncrementalCheckpointStore {
 public:
  IncrementalCheckpointStore(io::ReplicaSet& replicas,
                             IncrementalStoreOptions options = {});

  /// Attaches to whatever journal the replicas hold (a cold start on an
  /// empty store is OK) and rebuilds the dedup index. Call before the
  /// first dump() against pre-existing state; a fresh store needs no open.
  [[nodiscard]] Status open();

  /// Writes one generation: hashes every raw slab, compresses and ships
  /// only the dirty ones (skipping objects the store already holds), and
  /// replaces the journal with the entry appended. Fails without
  /// publishing the generation if the object or journal writes miss the
  /// write quorum.
  [[nodiscard]] Expected<DumpSummary> dump(const data::Field& field);

  /// Reconstructs `generation` from any quorum of replicas. Lost slabs
  /// are filled per `policy` exactly as recover_checkpoint fills them
  /// (zero or nearest-neighbor-clamped interpolation), or turn the call
  /// into a typed error under policy.fail_on_any_loss.
  [[nodiscard]] Expected<RestoreReport> restore(
      std::uint64_t generation,
      const compress::RecoveryPolicy& policy = {}) const;

  /// restore() of the newest generation in the journal. The pick and the
  /// restore happen under one shared lock over one journal read, so a
  /// concurrent drop_generation cannot invalidate the chosen generation.
  [[nodiscard]] Expected<RestoreReport> restore_latest(
      const compress::RecoveryPolicy& policy = {}) const;

  /// Retires one generation from the journal (objects stay until gc()).
  [[nodiscard]] Status drop_generation(std::uint64_t generation);

  /// Removes every stored object that no live generation references.
  [[nodiscard]] Expected<GcReport> gc();

  /// Generations currently in the journal, ascending.
  [[nodiscard]] std::vector<std::uint64_t> generations() const;
  [[nodiscard]] std::uint64_t latest_generation() const;

  [[nodiscard]] const IncrementalStoreOptions& options() const noexcept {
    return options_;
  }

 private:
  std::string slab_path(std::uint64_t stored_hash) const;
  /// Common prefix of every epoch-named journal file.
  std::string journal_prefix() const;
  std::string journal_path(std::uint64_t epoch) const;

  /// One consistent read of the merged journal.
  struct JournalView {
    std::vector<GenerationEntry> entries;
    std::uint64_t epoch = 0;            ///< winning epoch (0 = fresh store)
    std::uint64_t next_generation = 1;  ///< first unused generation number
    bool degraded = false;  ///< merge needed replica or chunk failover
  };

  /// Reads and merges the journal from all readable replicas; see the
  /// quorum semantics in the file comment. A fresh store (no journal ever
  /// committed) is only concluded when at least write_quorum live
  /// replicas hold no journal file; below that the call fails closed.
  [[nodiscard]] Expected<JournalView> load_journal() const LCP_REQUIRES_SHARED(mu_);

  /// Restores `generation` out of an already-loaded journal view; caller
  /// holds mu_ (shared suffices — this is a pure read).
  Expected<RestoreReport> restore_from_view(
      const JournalView& view, std::uint64_t generation,
      const compress::RecoveryPolicy& policy) const LCP_REQUIRES_SHARED(mu_);

  /// Writes `next` as the epoch_+1 journal file and, on quorum success,
  /// commits it to entries_/next_generation_ and prunes superseded epoch
  /// files. On a sub-quorum write the partial copies are removed
  /// best-effort and the attempted epoch is burnt (epoch_ advances), so a
  /// retry can never produce two same-epoch journals with different
  /// content; the committed journal files are never touched.
  Status publish_journal(std::vector<GenerationEntry> next,
                         std::uint64_t next_generation, Bytes* journal_bytes)
      LCP_REQUIRES(mu_);

  /// Removes journal files below `keep_epoch` from every up replica
  /// (best-effort: a lingering lower epoch always loses the epoch vote).
  void prune_superseded_journals(std::uint64_t keep_epoch) LCP_REQUIRES(mu_);

  /// Loads journal state into entries_/epoch_/index on first use.
  [[nodiscard]] Status ensure_loaded_locked() LCP_REQUIRES(mu_);

  /// Removes any stale copy and fans the write out; quorum-checked. Slab
  /// objects only — the journal goes through publish_journal, which never
  /// removes before writing.
  [[nodiscard]] Status put_file(const std::string& path, std::span<const std::uint8_t> data);

  /// Rebuilds raw->stored dedup state from `entries`.
  void rebuild_index(const std::vector<GenerationEntry>& entries)
      LCP_REQUIRES(mu_);

  io::ReplicaSet& replicas_;
  IncrementalStoreOptions options_;

  /// Mutating entry points (dump/drop/gc/open) hold this exclusively;
  /// restores hold it shared, so any number of concurrent restores run in
  /// parallel but never overlap a journal rewrite or object removal (the
  /// in-memory NfsServer, like a real backend, does not promise atomic
  /// visibility of a replace while readers stream the old bytes).
  mutable SharedMutex mu_;
  bool loaded_ LCP_GUARDED_BY(mu_) = false;
  /// Journal rewrite counter (freshness order).
  std::uint64_t epoch_ LCP_GUARDED_BY(mu_) = 0;
  /// Next generation number to assign. Persisted in the journal header
  /// and never reused, even after the newest generation is dropped — a
  /// reused number could fork against a stale replica's entry for it.
  std::uint64_t next_generation_ LCP_GUARDED_BY(mu_) = 1;
  std::vector<GenerationEntry> entries_ LCP_GUARDED_BY(mu_);
  /// Object names (stored hashes) the store believes are durable, i.e.
  /// referenced by some live journal entry. Guards dedup: an object not
  /// in this set is (re)written even if a stale file shares the name.
  std::vector<std::uint64_t> stored_objects_ LCP_GUARDED_BY(mu_);
};

}  // namespace lcp::core
