#pragma once
// Streaming dump engine: parallel slab compression overlapped with framed
// NFS writes. The serial dump path compresses the whole field, frames it,
// and only then starts writing; this engine runs the two stages as a
// pipeline over a bounded queue so slab i's frame chunk is on the wire
// while slab i+1 is still compressing.
//
//   compress workers (ThreadPool, out of order)
//        |  CompressedSlab{index, container}
//        v
//   BoundedQueue (capacity = queue_capacity, backpressure to workers)
//        |
//        v
//   writer thread: reorders to slab order -> FramedWriter.append_chunk
//                  -> take_emitted() -> NfsClient::FileStream::append
//                  -> finally back-patches the frame header at offset 0
//
// The bytes that land on the server are byte-identical to
// compress::write_checkpoint(field, options) — same manifest chunk 0,
// same slab chunks in order, same trailing manifest replica, same frame
// header/trailer — so the existing read_checkpoint / recover_checkpoint
// paths decode a streamed dump unchanged. The only wire-visible cost of
// streaming is the placeholder header (kFrameHeaderBytes zeros) written
// before the first chunk and overwritten at the end: the header's chunk
// count and payload CRC are only known once the last slab is sealed.
//
// Modeled-time accounting for the overlap (what the tuning layer prices)
// lives in tuning::plan_overlapped_dump; the measured per-slab timings
// this engine reports feed the scaling bench's makespan model.

#include <string>
#include <vector>

#include "compress/common/checkpoint.hpp"
#include "io/nfs_client.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace lcp::core {

struct StreamingDumpConfig {
  /// Codec, bound and slab size — the wire format contract is shared with
  /// compress::write_checkpoint.
  compress::CheckpointOptions checkpoint;
  /// Bounded-queue capacity in slabs: how far compression may run ahead
  /// of the writer before backpressure stalls the workers.
  std::size_t queue_capacity = 4;
};

struct StreamingDumpStats {
  std::size_t slabs = 0;
  Bytes input_bytes;    ///< raw field bytes
  Bytes payload_bytes;  ///< framed payload (manifest + slabs + replica)
  Bytes wire_bytes;     ///< bytes put on the wire, incl. placeholder header
  std::uint32_t frame_chunks = 0;
  std::uint64_t queue_pushes = 0;
  /// Per-slab compression wall time, in slab order (worker-measured, so
  /// contention on an oversubscribed host is included).
  std::vector<Seconds> slab_seconds;
  Seconds compress_seconds{0.0};  ///< sum of slab_seconds
  Seconds write_seconds{0.0};     ///< writer-thread time spent in appends
  Seconds wall_seconds{0.0};      ///< end-to-end engine wall time
};

/// Runs the pipeline: compresses `field` slab-by-slab on `pool`, streams
/// the framed checkpoint to `client` at `path`, and verifies the stored
/// size. On success the server holds exactly write_checkpoint's bytes.
[[nodiscard]] Expected<StreamingDumpStats> streaming_dump(
    const data::Field& field, ThreadPool& pool, io::NfsClient& client,
    const std::string& path, const StreamingDumpConfig& config = {});

}  // namespace lcp::core
