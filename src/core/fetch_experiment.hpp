#pragma once
// Read-path experiment (extension): the consumer side of the paper's I/O
// story — fetch compressed data from the NFS, then decompress it for
// analysis. Mirrors the Fig 6 dump experiment with the stages reversed,
// using the really-measured decompression cost from calibration, and
// applies the Eqn 3 fractions to the read (transit) and decompress
// (compute) stages respectively.

#include <vector>

#include "core/compression_study.hpp"
#include "io/transit_model.hpp"
#include "tuning/io_plan.hpp"
#include "tuning/rule.hpp"

namespace lcp::core {

struct FetchConfig {
  Bytes total_bytes = Bytes::from_gb(512);  ///< decompressed volume
  data::Scale scale = data::Scale::kCi;
  std::vector<double> error_bounds;  ///< empty => the paper's four
  power::ChipId chip = power::ChipId::kBroadwellD1548;
  compress::CodecId codec = compress::CodecId::kSz;
  tuning::TuningRule rule = tuning::paper_rule();
  io::TransitModelConfig transit;
  std::uint64_t seed = 20220530;
  /// When > 0 the stored dump is a resilient framed stream cut at this
  /// chunk size, so the read moves the frame overhead too. 0 keeps the
  /// original unframed path bit-for-bit.
  std::size_t frame_chunk_bytes = 0;
};

struct FetchOutcome {
  double error_bound = 0.0;
  double compression_ratio = 0.0;
  Bytes compressed_bytes;
  /// Bytes actually read: compressed payload plus frame overhead; equals
  /// compressed_bytes when framing is off.
  Bytes framed_bytes;
  tuning::PlanComparison plan;  ///< stages: "read", then "decompress"
};

struct FetchResult {
  std::vector<FetchOutcome> outcomes;

  [[nodiscard]] Joules mean_energy_saved() const noexcept;
  [[nodiscard]] double mean_energy_savings() const noexcept;
};

[[nodiscard]] Expected<FetchResult> run_fetch_experiment(
    const FetchConfig& config);

/// Decompression workload for a calibrated cell on a chip (decompression
/// is lighter and slightly less cpu-bound than compression).
[[nodiscard]] power::Workload decompress_workload_from_calibration(
    const Calibration& cal, const power::ChipSpec& spec);

}  // namespace lcp::core
