#include "core/compression_study.hpp"

#include "compress/common/metrics.hpp"
#include "data/generators.hpp"

namespace lcp::core {

CodecProfile codec_profile(compress::CodecId id) noexcept {
  switch (id) {
    case compress::CodecId::kSz:
      return {0.53, 1.00};
    case compress::CodecId::kZfp:
      return {0.50, 0.94};
  }
  return {0.5, 1.0};
}

Expected<Calibration> calibrate_codec(compress::CodecId codec,
                                      data::DatasetId dataset,
                                      double error_bound, data::Scale scale,
                                      std::uint64_t seed) {
  const auto field = data::generate_dataset(dataset, scale, seed);
  return calibrate_codec_on_field(codec, dataset, error_bound, field);
}

Expected<Calibration> calibrate_codec_on_field(compress::CodecId codec,
                                               data::DatasetId dataset,
                                               double error_bound,
                                               const data::Field& field) {
  const auto compressor = compress::make_compressor(codec);
  auto report = compress::round_trip(
      *compressor, field, compress::ErrorBound::absolute(error_bound));
  if (!report) {
    return report.status();
  }
  if (!report->bound_respected) {
    return Status::internal("codec violated its error bound during calibration");
  }
  Calibration cal;
  cal.codec = codec;
  cal.dataset = dataset;
  cal.error_bound = error_bound;
  cal.native_seconds = report->compress_time;
  cal.decompress_seconds = report->decompress_time;
  cal.compression_ratio = report->compression_ratio;
  cal.max_abs_error = report->error.max_abs_error;
  cal.input_bytes = field.size_bytes();
  return cal;
}

power::Workload workload_from_calibration(const Calibration& cal,
                                          const power::ChipSpec& spec) {
  const CodecProfile profile = codec_profile(cal.codec);
  // Throughput normalization: the from-scratch codecs in this repo run
  // ~6-7x slower than the optimized upstream SZ/ZFP binaries the paper
  // measured (hand-tuned SIMD kernels, zstd backend). Relative costs
  // (codec vs codec, bound vs bound, dataset vs dataset) are preserved by
  // the calibration; this constant rescales absolute times so workload
  // durations — and therefore joule magnitudes in Fig 6 — land at the
  // paper's scale.
  constexpr double kCodecSpeedNormalization = 0.25;
  return power::compression_workload(
      spec, cal.native_seconds * kCodecSpeedNormalization,
      profile.cpu_fraction, profile.activity);
}

Expected<CompressionStudyResult> run_compression_study(
    const CompressionStudyConfig& config) {
  CompressionStudyConfig cfg = config;
  if (cfg.error_bounds.empty()) {
    cfg.error_bounds = compress::paper_error_bounds();
  }
  if (cfg.chips.empty()) {
    cfg.chips = power::all_chips();
  }
  if (cfg.codecs.empty()) {
    cfg.codecs = compress::all_codecs();
  }
  if (cfg.datasets.empty()) {
    for (const auto& spec : data::table1_datasets()) {
      cfg.datasets.push_back(spec.id);
    }
  }

  CompressionStudyResult result;
  // Phase 1: calibration (real codec executions); each dataset is
  // generated once and shared across the codec x bound grid.
  for (data::DatasetId dataset : cfg.datasets) {
    const auto field = data::generate_dataset(dataset, cfg.scale, cfg.seed);
    for (compress::CodecId codec : cfg.codecs) {
      for (double eb : cfg.error_bounds) {
        auto cal = calibrate_codec_on_field(codec, dataset, eb, field);
        if (!cal) {
          return cal.status();
        }
        result.calibrations.push_back(*cal);
      }
    }
  }

  // Phase 2: DVFS sweep of every calibrated workload on every chip.
  std::uint64_t stream = cfg.seed;
  for (power::ChipId chip : cfg.chips) {
    Platform platform{chip, cfg.noise, cfg.seed ^ 0x9e37u ^ stream};
    for (const auto& cal : result.calibrations) {
      const auto workload = workload_from_calibration(cal, platform.spec());
      CompressionSeries series;
      series.chip = chip;
      series.codec = cal.codec;
      series.dataset = cal.dataset;
      series.error_bound = cal.error_bound;
      series.sweep = frequency_sweep(platform, workload, cfg.repeats);
      result.series.push_back(std::move(series));
      ++stream;
    }
  }
  return result;
}

}  // namespace lcp::core
