#pragma once
// Frequency sweep: measure a workload at every DVFS grid point with
// repeats (Section III-B: f_min..f_max in 50 MHz steps, 10 repeats each),
// plus the scaling used by Figures 1-4 (divide every series by its value
// at the max clock).

#include <vector>

#include "core/platform.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace lcp::core {

/// Aggregated measurements at one frequency.
struct SweepPoint {
  GigaHertz frequency;
  SampleSummary power_w;
  SampleSummary runtime_s;
  SampleSummary energy_j;
};

struct SweepOptions {
  std::size_t repeats = 10;  ///< measurements per grid point (paper: 10)
  ThreadPool* pool = nullptr;  ///< non-null: measure grid points in parallel
};

/// Runs `w` at every grid frequency with `repeats` measurements each.
/// Each grid point draws from an independent noise stream keyed by its
/// frequency index, so the result is bit-identical whether the grid is
/// walked sequentially or in parallel on `options.pool`.
[[nodiscard]] std::vector<SweepPoint> frequency_sweep(
    Platform& platform, const power::Workload& w, const SweepOptions& options);

/// Sequential convenience overload (repeats only).
[[nodiscard]] std::vector<SweepPoint> frequency_sweep(Platform& platform,
                                                      const power::Workload& w,
                                                      std::size_t repeats);

/// Which metric of a sweep to extract.
enum class SweepMetric { kPower, kRuntime, kEnergy };

/// One scaled characteristic curve: value(f) / value(f_max), with the 95%
/// CI half-width scaled identically.
struct ScaledCurve {
  std::vector<double> f_ghz;
  std::vector<double> value;  ///< mean / mean-at-f_max
  std::vector<double> ci95;   ///< CI half-width on the same scale
};

/// Scales `metric` of the sweep by its value at the highest frequency.
[[nodiscard]] ScaledCurve scale_by_max_frequency(
    const std::vector<SweepPoint>& points, SweepMetric metric);

}  // namespace lcp::core
