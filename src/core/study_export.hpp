#pragma once
// CSV export of study results: the long-format tables an analyst would
// load into pandas/R to re-plot the paper's figures or run their own
// regressions. One row per (series, frequency) with identifying columns
// and the aggregated measurement statistics.

#include <string>

#include "core/compression_study.hpp"
#include "core/transit_study.hpp"
#include "core/validation_study.hpp"
#include "support/csv.hpp"

namespace lcp::core {

/// Columns: chip, codec, dataset, error_bound, f_ghz, power_w_mean,
/// power_w_ci95, runtime_s_mean, runtime_s_ci95, energy_j_mean,
/// energy_j_ci95, scaled_power, scaled_runtime.
[[nodiscard]] CsvWriter export_compression_study(
    const CompressionStudyResult& result);

/// Columns: chip, size_gb, f_ghz, power/runtime/energy stats, scaled_*.
[[nodiscard]] CsvWriter export_transit_study(const TransitStudyResult& result);

/// Columns: field, codec, f_ghz, stats, scaled_power.
[[nodiscard]] CsvWriter export_validation_study(const ValidationResult& result);

/// Columns: codec, dataset, error_bound, native_seconds,
/// compression_ratio, max_abs_error, input_mb.
[[nodiscard]] CsvWriter export_calibrations(
    const CompressionStudyResult& result);

}  // namespace lcp::core
