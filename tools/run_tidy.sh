#!/usr/bin/env bash
# Runs clang-tidy (profile: /.clang-tidy) over the exported compilation
# database. Two modes:
#
#   tools/run_tidy.sh              # changed-files mode: lint only the
#                                  # first-party C++ files touched vs the
#                                  # merge base (or staged/unstaged when
#                                  # the branch has no upstream)
#   tools/run_tidy.sh --all        # full mode: every first-party TU in
#                                  # compile_commands.json (what CI runs)
#
# Extra args after the mode are forwarded to clang-tidy (e.g. --fix).
# Requires a configured build tree: cmake -B build -S .  (the top-level
# CMakeLists.txt always exports compile_commands.json).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${LCP_BUILD_DIR:-$repo_root/build}"
db="$build_dir/compile_commands.json"

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy" ]]; then
  echo "run_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to" >&2
  echo "override). This container may only carry GCC; the static-analysis" >&2
  echo "CI leg installs clang-tidy and runs this script in --all mode." >&2
  exit 0
fi

if [[ ! -f "$db" ]]; then
  echo "run_tidy.sh: $db not found; configure first:" >&2
  echo "  cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

mode="changed"
if [[ "${1:-}" == "--all" ]]; then
  mode="all"
  shift
fi

# First-party translation units only: the database also holds gtest /
# benchmark sources fetched by the build, which are not ours to lint.
files=()
if [[ "$mode" == "all" ]]; then
  while IFS= read -r f; do
    files+=("$f")
  done < <(python3 - "$db" "$repo_root" <<'EOF'
import json, sys
db, root = sys.argv[1], sys.argv[2].rstrip("/")
seen = set()
for entry in json.load(open(db)):
    f = entry["file"]
    if not f.startswith("/"):
        f = entry["directory"].rstrip("/") + "/" + f
    for sub in ("/src/", "/tests/", "/bench/", "/examples/"):
        if f.startswith(root + sub) and f not in seen:
            seen.add(f)
            print(f)
EOF
)
else
  base=""
  if git -C "$repo_root" rev-parse --abbrev-ref '@{upstream}' \
      >/dev/null 2>&1; then
    base="$(git -C "$repo_root" merge-base HEAD '@{upstream}')"
  fi
  while IFS= read -r f; do
    case "$f" in
      src/*|tests/*|bench/*|examples/*) ;;
      *) continue ;;
    esac
    case "$f" in
      *.cpp|*.cc) files+=("$repo_root/$f") ;;
    esac
  done < <(
    if [[ -n "$base" ]]; then
      git -C "$repo_root" diff --name-only --diff-filter=d "$base"
    else
      git -C "$repo_root" diff --name-only --diff-filter=d HEAD
    fi
  )
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no files to lint ($mode mode)"
  exit 0
fi

echo "run_tidy.sh: linting ${#files[@]} file(s) with $tidy ($mode mode)"
"$tidy" -p "$build_dir" --quiet "$@" "${files[@]}"
echo "run_tidy.sh: clean"
