#!/usr/bin/env python3
"""Repo-invariant linter for lcpower.

Fast, dependency-free checks for invariants the compiler cannot see but the
codebase depends on. Run from anywhere; exits non-zero with one
`path:line: [rule] message` diagnostic per violation. CI runs this as part
of the static-analysis leg; tools/run_tidy.sh runs the clang-tidy half.

Rules
-----
naked-concurrency
    No `std::mutex` / `std::shared_mutex` / `std::condition_variable` /
    `std::thread` (or their lock RAII types) outside `src/support/`.
    Everything else must use the annotated wrappers from
    `support/thread_annotations.hpp` (Mutex, SharedMutex, CondVar,
    MutexLock, ReaderLock, WriterLock) and `support/scoped_thread.hpp`
    (ScopedThread), so Clang's -Wthread-safety analysis covers every lock
    in the tree. Naked primitives are invisible to the analysis.

no-analysis-suppression
    `LCP_NO_THREAD_SAFETY_ANALYSIS` (or the raw attribute) may appear only
    in `src/support/thread_annotations.hpp`. The acceptance bar for the
    analysis is zero suppressions outside the wrapper header itself.

seeded-rng
    No `rand()` / `srand()` / `std::random_device` anywhere in first-party
    code except `src/support/rng.*`. Every experiment in this repo is
    seed-reproducible by contract (equal seeds => equal traces, benches
    diff their own reruns); one ambient-entropy call silently breaks that.

test-registration
    Every file under `tests/` that defines a gtest TEST/TEST_F/TYPED_TEST
    must be listed in `tests/CMakeLists.txt`. An unregistered test file
    compiles nowhere and silently stops running — the worst kind of green.

bench-gates
    Every `bench/extension_*.cpp` and `bench/micro_hotpaths.cpp` must keep
    a non-zero exit path (`return 1`, `? 0 : 1`, or EXIT_FAILURE): the
    bench smoke tests assert on exit codes, so a bench that can no longer
    fail is a gate that can no longer gate.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

# ---------------------------------------------------------------- helpers


def cxx_files(root: pathlib.Path, rel: str) -> list[pathlib.Path]:
    base = root / rel
    if not base.is_dir():
        return []
    return sorted(
        p for p in base.rglob("*") if p.suffix in CXX_SUFFIXES and p.is_file()
    )


def strip_comments(line: str) -> str:
    """Drops // comments so prose about std::mutex does not trip the rules.

    Block comments are handled line-by-line well enough for this codebase
    (no code shares a line with the inside of a /* */ block).
    """
    return re.sub(r"//.*$", "", line)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


# ------------------------------------------------------------------ rules

NAKED_CONCURRENCY = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(_any)?|thread|jthread|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)


def check_naked_concurrency(root: pathlib.Path) -> list[Finding]:
    findings = []
    for path in cxx_files(root, "src"):
        if "support" in path.relative_to(root / "src").parts[:1]:
            continue  # the wrappers themselves live here
        for lineno, line in enumerate(
            path.read_text(errors="replace").splitlines(), 1
        ):
            m = NAKED_CONCURRENCY.search(strip_comments(line))
            if m:
                findings.append(
                    Finding(
                        path.relative_to(root), lineno, "naked-concurrency",
                        f"{m.group(0)} outside src/support/; use the "
                        "annotated wrappers from "
                        "support/thread_annotations.hpp "
                        "(or ScopedThread from support/scoped_thread.hpp)",
                    )
                )
    return findings


SUPPRESSION = re.compile(
    r"LCP_NO_THREAD_SAFETY_ANALYSIS|no_thread_safety_analysis"
)


def check_no_suppression(root: pathlib.Path) -> list[Finding]:
    findings = []
    allowed = root / "src" / "support" / "thread_annotations.hpp"
    for rel in ("src", "tests", "bench", "examples"):
        for path in cxx_files(root, rel):
            if path == allowed:
                continue
            for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), 1
            ):
                if SUPPRESSION.search(strip_comments(line)):
                    findings.append(
                        Finding(
                            path.relative_to(root), lineno,
                            "no-analysis-suppression",
                            "thread-safety analysis may only be suppressed "
                            "inside support/thread_annotations.hpp",
                        )
                    )
    return findings


UNSEEDED_RNG = re.compile(r"\b(?:std::)?s?rand\s*\(|std::random_device")


def check_seeded_rng(root: pathlib.Path) -> list[Finding]:
    findings = []
    for rel in ("src", "tests", "bench", "examples"):
        for path in cxx_files(root, rel):
            if path.parent == root / "src" / "support" and (
                path.stem == "rng"
            ):
                continue  # the one sanctioned RNG implementation
            for lineno, line in enumerate(
                path.read_text(errors="replace").splitlines(), 1
            ):
                m = UNSEEDED_RNG.search(strip_comments(line))
                if m:
                    findings.append(
                        Finding(
                            path.relative_to(root), lineno, "seeded-rng",
                            f"ambient-entropy RNG ({m.group(0).strip()}) "
                            "breaks seed reproducibility; use "
                            "support/rng.hpp with an explicit seed",
                        )
                    )
    return findings


GTEST_MACRO = re.compile(r"^\s*(TEST|TEST_F|TYPED_TEST|TEST_P)\s*\(")


def check_test_registration(root: pathlib.Path) -> list[Finding]:
    findings = []
    cmake = root / "tests" / "CMakeLists.txt"
    if not cmake.is_file():
        return findings
    registered = cmake.read_text(errors="replace")
    for path in cxx_files(root, "tests"):
        if not any(
            GTEST_MACRO.match(line)
            for line in path.read_text(errors="replace").splitlines()
        ):
            continue
        rel = path.relative_to(root / "tests").as_posix()
        if rel not in registered:
            findings.append(
                Finding(
                    path.relative_to(root), 1, "test-registration",
                    f"defines TEST()s but is not listed in "
                    f"tests/CMakeLists.txt — it never runs",
                )
            )
    return findings


EXIT_GATE = re.compile(r"return\s+1\b|\?\s*0\s*:\s*1|EXIT_FAILURE")


def check_bench_gates(root: pathlib.Path) -> list[Finding]:
    findings = []
    bench = root / "bench"
    if not bench.is_dir():
        return findings
    gated = sorted(bench.glob("extension_*.cpp"))
    hotpaths = bench / "micro_hotpaths.cpp"
    if hotpaths.is_file():
        gated.append(hotpaths)
    for path in gated:
        text = path.read_text(errors="replace")
        if not EXIT_GATE.search(text):
            findings.append(
                Finding(
                    path.relative_to(root), 1, "bench-gates",
                    "gated bench lost its non-zero exit path; the smoke "
                    "test can no longer catch a regression",
                )
            )
    return findings


RULES = {
    "naked-concurrency": check_naked_concurrency,
    "no-analysis-suppression": check_no_suppression,
    "seeded-rng": check_seeded_rng,
    "test-registration": check_test_registration,
    "bench-gates": check_bench_gates,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repo root to lint (default: this script's repo)",
    )
    parser.add_argument(
        "--rule", action="append", choices=sorted(RULES),
        help="run only the named rule(s); default: all",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args()

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint.py: not a directory: {root}", file=sys.stderr)
        return 2

    selected = args.rule or sorted(RULES)
    findings: list[Finding] = []
    for name in selected:
        findings.extend(RULES[name](root))

    for f in findings:
        print(f)
    if findings:
        print(
            f"lint.py: {len(findings)} violation(s) across "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint.py: clean ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
